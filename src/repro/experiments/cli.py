"""Command-line entry point: ``starnet <command> [options]``.

Commands
--------
figure1      Reproduce a Figure-1 panel (model + optional simulation).
properties   Section-2 topology comparison table (star vs. hypercube).
scale        Large-n model-only study.
ablation     Run one of the named ablation studies.
distance     Average-distance table (Eq. 2 vs. exact enumeration).
campaign     Run a declarative parameter-grid campaign (parallel,
             resumable, cache-backed).
sim          Run one flit-level simulation with full workload control.
validate     Model-vs-sim accuracy per workload (campaign-backed);
             --bounds adds the network-calculus cross-check, --preset
             runs the standing S5/S6 suites with stated tolerances, and
             a probed warmup-adequacy check warns when the configured
             warmup window ends before the measured transient.
serve        Capacity-planning query service over a campaign store
             (warm store hits, saturation-aware surrogates, instant
             cold fallback + background refinement); --trace-events
             records every query's span tree.
profile      Per-phase kernel timing of one array-engine batch
             (--json for machine-readable output).
watch        Cycle-resolution time-series probes of one array-engine
             run: in-flight, throughput, backlog and VC occupancy as
             terminal sparklines/table or JSONL (--out).
trace        Trace-file tooling: ``trace export`` rewrites span events
             as Chrome trace-event JSON for chrome://tracing.
"""

from __future__ import annotations

import argparse
import sys

from repro.api.presets import available_presets
from repro.api.scenario import Scenario, run_units
from repro.campaign.grid import GridSpec
from repro.campaign.kinds import available_kinds
from repro.campaign.runner import pool_choice, to_payload
from repro.experiments import ablations
from repro.experiments.figure1 import FIGURE1_PANELS, panel_record, render_panel, reproduce_panel
from repro.experiments.tables import render_table
from repro.topology.properties import comparison_table
from repro.topology.star import StarGraph, star_average_distance_closed_form
from repro.utils.exceptions import ConfigurationError

__all__ = ["main", "build_parser"]

#: Scenario-flag defaults of ``starnet validate`` when --preset is not
#: used — the single source for both the help strings and the
#: None-resolution (argparse defaults stay None so --preset can reject
#: explicitly passed, conflicting flags).
_VALIDATE_DEFAULTS = {
    "order": 4,
    "message_length": 16,
    "vcs": 5,
    "quality": "quick",
    "seed": 0,
    "engine": "object",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="starnet",
        description="Star-graph wormhole latency model reproduction (IPDPS 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure1", help="reproduce a Figure-1 panel")
    fig.add_argument("--panel", choices=sorted(FIGURE1_PANELS), default="a")
    fig.add_argument("--quality", choices=("smoke", "quick", "full"), default="quick")
    fig.add_argument("--no-sim", action="store_true", help="model curves only")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--save", metavar="DIR", help="write a JSON record to DIR")
    fig.add_argument("--workers", type=int, default=1, help="process-pool width")

    sub.add_parser("properties", help="topology comparison table (section 2)")

    sc = sub.add_parser("scale", help="large-n model study")
    sc.add_argument("--max-n", type=int, default=9)
    sc.add_argument("--workers", type=int, default=1, help="process-pool width")
    sc.add_argument(
        "--out", metavar="FILE", help="also save the study as a ResultSet JSONL"
    )

    ab = sub.add_parser("ablation", help="run a named ablation")
    ab.add_argument(
        "name",
        choices=(
            "blocking",
            "routing",
            "vcsplit",
            "hypercube",
            "hypercube-model",
            "blocking-profile",
        ),
    )
    ab.add_argument("--workers", type=int, default=1, help="process-pool width")
    ab.add_argument(
        "--out",
        metavar="FILE",
        help="also save the study as a ResultSet JSONL (vcsplit only)",
    )

    dist = sub.add_parser("distance", help="average-distance table (Eq. 2)")
    dist.add_argument("--max-n", type=int, default=7)

    camp = sub.add_parser(
        "campaign",
        help="run a declarative parameter-grid campaign",
        description=(
            "Expand a parameter grid into content-hashed work units and run "
            "them through the campaign engine.  The grid comes from a "
            "TOML/JSON spec file (--spec) or from --kind/--axis/--set flags; "
            "with --out the results stream to a JSONL store that --resume "
            "reads back to skip completed units."
        ),
    )
    camp.add_argument("--spec", metavar="FILE", help="TOML/JSON grid-spec file")
    camp.add_argument("--kind", choices=available_kinds(), help="work-unit kind")
    camp.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=VALUES",
        help="swept axis: comma list (a,b,c) or linspace (lo:hi:count); repeatable",
    )
    camp.add_argument(
        "--set",
        action="append",
        default=[],
        dest="pinned",
        metavar="NAME=VALUE",
        help="pinned parameter shared by every unit; repeatable",
    )
    camp.add_argument(
        "--seeds", type=int, help="replication: adds a seed axis 0..N-1"
    )
    camp.add_argument("--workers", type=int, default=1, help="process-pool width")
    camp.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="in-process thread lanes instead of --workers processes "
        "(0 = one per core); best for array-engine units, whose compiled "
        "kernel releases the GIL",
    )
    camp.add_argument("--out", metavar="FILE", help="JSONL result store")
    camp.add_argument(
        "--resume",
        action="store_true",
        help="skip units already present in --out",
    )
    camp.add_argument(
        "--cache-dir", metavar="DIR", help="shared path-statistics disk cache"
    )
    camp.add_argument(
        "--no-table", action="store_true", help="print only the run summary"
    )
    camp.add_argument(
        "--events",
        metavar="FILE",
        help="append per-unit lifecycle events (queued/started/cached/"
        "finished plus periodic heartbeats) as JSONL to FILE",
    )

    prof = sub.add_parser(
        "profile",
        help="per-phase kernel timing of one array-engine batch",
        description=(
            "Run one profiled batch on the array engine and print where "
            "the kernel's wall time goes, phase by phase (generation / "
            "activation / route / complete).  Profiling is observational: "
            "results are bit-identical to an unprofiled run, and the "
            "instrumentation is compiled in but completely off unless this "
            "command (or profile=True) asks for it."
        ),
    )
    prof.add_argument("--topology", choices=("star", "hypercube"), default="star")
    prof.add_argument("--order", type=int, default=4, help="star n / hypercube k")
    prof.add_argument(
        "--algorithm", default="enhanced_nbc", help="routing-registry name"
    )
    prof.add_argument(
        "--rate",
        type=float,
        default=None,
        help="lambda_g, messages/cycle/node (default: --load of saturation)",
    )
    prof.add_argument(
        "--load",
        type=float,
        default=0.4,
        help="operating point as a fraction of the model's saturation rate, "
        "used when --rate is not given",
    )
    prof.add_argument("--message-length", type=int, default=16, help="M, flits")
    prof.add_argument("--vcs", type=int, default=6, help="V, virtual channels")
    prof.add_argument(
        "--workload", default="uniform", help="spatial[+temporal] workload string"
    )
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument(
        "--replications",
        type=int,
        default=8,
        metavar="R",
        help="batch width (all replications advance through the same "
        "vectorized passes; the table shows whole-batch time)",
    )
    prof.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="kernel worker threads (0 = one per core)",
    )
    prof.add_argument(
        "--quality", choices=("smoke", "quick", "full"), default="quick"
    )
    prof.add_argument("--warmup", type=int, help="override warmup cycles")
    prof.add_argument("--measure", type=int, help="override the measurement window")
    prof.add_argument("--drain", type=int, help="override the drain window")
    prof.add_argument(
        "--json",
        action="store_true",
        help="print one machine-readable JSON object instead of the table "
        "(phase nanoseconds plus the run's identifying parameters)",
    )

    watch = sub.add_parser(
        "watch",
        help="cycle-resolution time-series probes of one array-engine run",
        description=(
            "Run one probed batch on the array engine and render the "
            "sampled dynamics — in-flight messages, throughput, source "
            "backlog and per-channel VC occupancy — as terminal "
            "sparklines plus a sample table, or as JSONL with --out.  "
            "Probing is observational: results are bit-identical to an "
            "unprobed run.  The footer reports the MSER-based warmup "
            "adequacy check (see docs/observability.md)."
        ),
    )
    watch.add_argument("--topology", choices=("star", "hypercube"), default="star")
    watch.add_argument("--order", type=int, default=4, help="star n / hypercube k")
    watch.add_argument(
        "--algorithm", default="enhanced_nbc", help="routing-registry name"
    )
    watch.add_argument(
        "--rate",
        type=float,
        default=None,
        help="lambda_g, messages/cycle/node (default: --load of saturation)",
    )
    watch.add_argument(
        "--load",
        type=float,
        default=0.4,
        help="operating point as a fraction of the model's saturation rate, "
        "used when --rate is not given",
    )
    watch.add_argument("--message-length", type=int, default=16, help="M, flits")
    watch.add_argument("--vcs", type=int, default=6, help="V, virtual channels")
    watch.add_argument(
        "--workload", default="uniform", help="spatial[+temporal] workload string"
    )
    watch.add_argument("--seed", type=int, default=0)
    watch.add_argument(
        "--replications",
        type=int,
        default=4,
        metavar="R",
        help="batch width (series aggregate over the whole batch)",
    )
    watch.add_argument(
        "--quality", choices=("smoke", "quick", "full"), default="quick"
    )
    watch.add_argument("--warmup", type=int, help="override warmup cycles")
    watch.add_argument("--measure", type=int, help="override the measurement window")
    watch.add_argument("--drain", type=int, help="override the drain window")
    watch.add_argument(
        "--interval",
        type=int,
        default=None,
        metavar="K",
        help="probe stride in cycles (default: aimed at ~256 samples)",
    )
    watch.add_argument(
        "--rows",
        type=int,
        default=16,
        metavar="N",
        help="sample rows to print in the table (the series is thinned)",
    )
    watch.add_argument(
        "--out",
        metavar="FILE",
        help="write the samples as JSONL (one meta line, one line per "
        "sample) instead of rendering",
    )

    tr = sub.add_parser(
        "trace",
        help="trace-file tooling (export span events for chrome://tracing)",
    )
    trsub = tr.add_subparsers(dest="trace_command", required=True)
    texp = trsub.add_parser(
        "export",
        help="rewrite span events as Chrome trace-event JSON",
        description=(
            "Read a span-carrying event JSONL file (e.g. from starnet "
            "serve --trace-events) and write Chrome trace-event JSON "
            "loadable in chrome://tracing or Perfetto."
        ),
    )
    texp.add_argument("events", metavar="FILE", help="event JSONL file")
    texp.add_argument(
        "--out",
        metavar="FILE",
        help="output path (default: FILE with a .trace.json suffix)",
    )
    texp.add_argument(
        "--trace-id", default=None, help="export a single trace's tree"
    )

    sim = sub.add_parser(
        "sim",
        help="run one flit-level simulation",
        description=(
            "Run a single wormhole simulation with full workload control.  "
            "The workload string follows the spatial[+temporal] grammar, e.g. "
            "'hotspot(fraction=0.2)+onoff(duty=0.25,burst=8)'."
        ),
    )
    sim.add_argument("--topology", choices=("star", "hypercube"), default="star")
    sim.add_argument("--order", type=int, default=5, help="star n / hypercube k")
    sim.add_argument("--algorithm", default="enhanced_nbc", help="routing-registry name")
    sim.add_argument("--rate", type=float, default=0.001, help="lambda_g, messages/cycle/node")
    sim.add_argument("--message-length", type=int, default=32, help="M, flits")
    sim.add_argument("--vcs", type=int, default=6, help="V, virtual channels per channel")
    sim.add_argument("--workload", default="uniform", help="spatial[+temporal] workload string")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--engine",
        choices=("object", "array"),
        default="object",
        help="simulation backend (array = vectorized batch kernels)",
    )
    sim.add_argument(
        "--replications",
        type=int,
        default=1,
        metavar="R",
        help="independent seeds (seed..seed+R-1); R > 1 prints per-seed "
        "rows plus a pooled summary (one vectorized process on the "
        "array engine)",
    )
    sim.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="kernel worker threads for the array engine (0 = one per "
        "core; results are bit-identical for every value); overrides "
        "STARNET_THREADS, ignored by the object engine",
    )
    sim.add_argument("--quality", choices=("smoke", "quick", "full"), default="quick")
    sim.add_argument("--warmup", type=int, help="override the quality preset's warmup cycles")
    sim.add_argument("--measure", type=int, help="override the measurement window")
    sim.add_argument("--drain", type=int, help="override the drain window")
    sim.add_argument("--hops", action="store_true", help="also print per-hop blocking")

    val = sub.add_parser(
        "validate",
        help="model-vs-sim accuracy per workload",
        description=(
            "Sweep model and simulator over a shared rate ladder for each "
            "workload (a campaign grid with a workload axis) and report the "
            "per-workload accuracy in the mutually stable region."
        ),
    )
    val.add_argument(
        "--workload",
        action="append",
        default=[],
        metavar="SPEC",
        help="workload to validate (repeatable); default: a 3-workload suite",
    )
    # Scenario flags default to None so --preset can detect (and reject)
    # explicit values that would silently contradict the preset scenario;
    # without --preset they resolve through _VALIDATE_DEFAULTS.
    val.add_argument(
        "--order", type=int, default=None,
        help=f"star order n (default {_VALIDATE_DEFAULTS['order']})",
    )
    val.add_argument(
        "--message-length", type=int, default=None,
        help=f"M, flits (default {_VALIDATE_DEFAULTS['message_length']})",
    )
    val.add_argument(
        "--vcs", type=int, default=None,
        help=f"V (default {_VALIDATE_DEFAULTS['vcs']})",
    )
    val.add_argument(
        "--fractions",
        default="0.2,0.4,0.6",
        help="load points as fractions of the binding saturation rate",
    )
    val.add_argument(
        "--quality", choices=("smoke", "quick", "full"), default=None,
        help=f"simulation window preset (default {_VALIDATE_DEFAULTS['quality']})",
    )
    val.add_argument(
        "--warmup", type=int, default=None,
        help="override the quality preset's warmup cycles",
    )
    val.add_argument(
        "--measure", type=int, default=None,
        help="override the measurement window",
    )
    val.add_argument(
        "--drain", type=int, default=None, help="override the drain window"
    )
    val.add_argument(
        "--seed", type=int, default=None,
        help=f"master seed (default {_VALIDATE_DEFAULTS['seed']})",
    )
    val.add_argument(
        "--engine",
        choices=("object", "array"),
        default=None,
        help="simulation backend used for the sim side of the comparison "
        f"(default {_VALIDATE_DEFAULTS['engine']})",
    )
    val.add_argument("--workers", type=int, default=1, help="process-pool width")
    val.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="in-process thread lanes instead of --workers processes "
        "(0 = one per core); best with --engine array",
    )
    val.add_argument(
        "--tolerance",
        type=float,
        help="fail (exit 1) when a workload's mean relative error exceeds this",
    )
    val.add_argument(
        "--replications",
        type=int,
        default=1,
        metavar="R",
        help="pool R sim replications per point (sim_batch units with an "
        "across-replication CI) instead of one run",
    )
    val.add_argument(
        "--hops",
        action="store_true",
        help="also print measured per-hop blocking next to the model's "
        "P_block(k) prediction",
    )
    val.add_argument(
        "--bounds",
        action="store_true",
        help="also compute network-calculus delay bounds and print the "
        "model vs sim vs bound table (a finite bound below the simulated "
        "mean is flagged and fails the run)",
    )
    val.add_argument(
        "--preset",
        choices=available_presets(),
        help="run a standing cross-check suite (S5/S6 scenarios with "
        "stated tolerances) instead of the flag-built scenario; a "
        "workload exceeding its stated tolerance fails the run",
    )
    val.add_argument(
        "--out",
        metavar="FILE",
        help="save every model/sim/bound row as a ResultSet JSONL",
    )
    val.add_argument(
        "--cache-dir", metavar="DIR", help="shared campaign disk cache"
    )
    val.add_argument(
        "--no-warmup-check",
        action="store_true",
        help="skip the probed warmup-adequacy check (one extra array-"
        "engine run at the top load fraction per scenario, warning when "
        "the warmup window ends before the measured transient)",
    )

    srv = sub.add_parser(
        "serve",
        help="serve capacity queries over a campaign result store",
        description=(
            "Start the capacity-planning HTTP/JSON service: queries answer "
            "from the store when warm, through a saturation-aware surrogate "
            "when the rate falls inside a cached ladder, and from an instant "
            "model/bound evaluation otherwise (cold answers enqueue a "
            "simulation unit for background refinement).  A --store path "
            "ending in .jsonl opens the flat single-file layout; anything "
            "else opens (or creates) a sharded concurrent-writer store."
        ),
    )
    srv.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help="campaign result store (flat .jsonl file or sharded directory)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8351)
    srv.add_argument(
        "--cache-dir", metavar="DIR", help="shared campaign disk cache"
    )
    srv.add_argument(
        "--no-refine",
        action="store_true",
        help="answer cold queries without enqueueing background simulation",
    )
    srv.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="thread lanes for draining the refinement queue "
        "(0 = one per core; queries are unaffected)",
    )
    srv.add_argument(
        "--trace-events",
        metavar="FILE",
        help="append span/lifecycle events as JSONL to FILE: every query "
        "emits a service.query span, refinements parent under the query "
        "that enqueued them ('starnet trace export' renders the file "
        "for chrome://tracing)",
    )
    return parser


def _record_table(rec) -> str:
    if not rec.rows:
        return "(no rows)"
    headers = list(rec.rows[0].keys())
    rows = [[row.get(h) for h in headers] for row in rec.rows]
    return render_table(headers, rows)


def _campaign_grid(args) -> GridSpec:
    if args.spec:
        grid = GridSpec.from_file(args.spec)
        if args.kind or args.axis or args.pinned or args.seeds is not None:
            raise ConfigurationError(
                "--spec cannot be combined with --kind/--axis/--set/--seeds"
            )
        return grid
    if not args.kind:
        raise ConfigurationError("campaign needs either --spec or --kind")
    return GridSpec.from_cli(args.kind, args.axis, args.pinned, args.seeds)


def _campaign_table(result) -> str:
    """Flatten params + payload of every unit into one aligned table."""
    flat_rows = []
    headers: list[str] = []
    for unit, res in zip(result.units, result.results):
        payload = to_payload(res)
        row = dict(unit.params)
        if isinstance(payload, dict):
            for k, v in payload.items():
                # Nested tables (e.g. pooled hop-blocking rows) don't
                # fit a flat text column; the JSONL store keeps them.
                if isinstance(v, (list, dict)):
                    continue
                row.setdefault(k, v)
        else:
            row["result"] = payload
        for key in row:
            if key not in headers:
                headers.append(key)
        flat_rows.append(row)
    table = [[row.get(h, "") for h in headers] for row in flat_rows]
    return render_table(headers, table)


def _run_campaign_command(args) -> int:
    try:
        if args.resume and not args.out:
            raise ConfigurationError("--resume requires --out (the store to resume from)")
        grid = _campaign_grid(args)
    except ConfigurationError as exc:
        print(f"starnet campaign: error: {exc}", file=sys.stderr)
        return 2
    units = grid.expand()
    try:
        width, executor = pool_choice(args.workers, args.jobs)
    except ConfigurationError as exc:
        print(f"starnet campaign: error: {exc}", file=sys.stderr)
        return 2
    result = run_units(
        units,
        workers=width,
        executor=executor,
        store=args.out,
        resume=args.resume,
        cache_dir=args.cache_dir,
        events=args.events,
    )
    print(f"campaign[{grid.kind}]: {result.summary()}")
    if result.store_path is not None:
        print(f"store: {result.store_path}")
    if args.events:
        print(f"events: {args.events}")
    if not args.no_table:
        print()
        print(_campaign_table(result))
    return 0


def _run_profile_command(args) -> int:
    from repro.simulation.backends import simulate_batch
    from repro.simulation.config import resolve_threads

    try:
        if args.replications < 1:
            raise ConfigurationError("--replications must be >= 1")
        if args.jobs is not None:
            resolve_threads(args.jobs, None)
        scenario = Scenario(
            topology=args.topology,
            order=args.order,
            algorithm=args.algorithm,
            message_length=args.message_length,
            total_vcs=args.vcs,
            workload=args.workload,
            quality=args.quality,
            warmup_cycles=args.warmup,
            measure_cycles=args.measure,
            drain_cycles=args.drain,
            engine="array",
            seed=args.seed,
        )
        rate = args.rate
        if rate is None:
            if not 0 < args.load < 1:
                raise ConfigurationError(
                    f"--load must be in (0, 1), got {args.load}"
                )
            rate = round(args.load * scenario.saturation_rate(), 6)
        spec = scenario.sim_spec(rate)
        topo, algo, run_config = spec.build()
        results = simulate_batch(
            topo,
            algo,
            run_config,
            args.replications,
            threads=args.jobs,
            profile=True,
        )
    except ConfigurationError as exc:
        print(f"starnet profile: error: {exc}", file=sys.stderr)
        return 2
    prof = results[0].phase_ns or {}
    total = prof.get("total", 0) or 1
    cycles = prof.get("cycles", 0)
    if args.json:
        import json

        record = {
            "command": "profile",
            "topology": args.topology,
            "order": args.order,
            "algorithm": args.algorithm,
            "workload": run_config.workload_spec().canonical,
            "rate": rate,
            "message_length": args.message_length,
            "total_vcs": args.vcs,
            "replications": args.replications,
            "cycles": int(cycles),
            "total_ns": int(total),
            "phases": {
                phase: int(prof.get(phase, 0))
                for phase in ("generation", "activation", "route", "complete", "other")
            },
        }
        print(json.dumps(record, sort_keys=True))
        return 0
    print(
        f"profile[{args.topology} order={args.order} {args.algorithm}] "
        f"workload={run_config.workload_spec().canonical} rate={rate} "
        f"M={args.message_length} V={args.vcs} "
        f"replications={args.replications} cycles={cycles}"
    )
    rows = []
    for phase in ("generation", "activation", "route", "complete", "other"):
        ns = int(prof.get(phase, 0))
        rows.append(
            [
                phase,
                ns,
                f"{100.0 * ns / total:.1f}%",
                round(ns / cycles, 1) if cycles else "",
            ]
        )
    rows.append(["total", int(total), "100.0%", round(total / cycles, 1) if cycles else ""])
    print()
    print(render_table(["phase", "ns", "share", "ns/cycle"], rows))
    return 0


def _run_watch_command(args) -> int:
    import json

    from repro.obs import (
        default_probe_interval,
        series_rows,
        sparkline,
        warmup_adequacy,
    )
    from repro.simulation.backends import simulate_batch

    try:
        if args.replications < 1:
            raise ConfigurationError("--replications must be >= 1")
        scenario = Scenario(
            topology=args.topology,
            order=args.order,
            algorithm=args.algorithm,
            message_length=args.message_length,
            total_vcs=args.vcs,
            workload=args.workload,
            quality=args.quality,
            warmup_cycles=args.warmup,
            measure_cycles=args.measure,
            drain_cycles=args.drain,
            engine="array",
            seed=args.seed,
        )
        rate = args.rate
        if rate is None:
            if not 0 < args.load < 1:
                raise ConfigurationError(
                    f"--load must be in (0, 1), got {args.load}"
                )
            rate = round(args.load * scenario.saturation_rate(), 6)
        spec = scenario.sim_spec(rate)
        topo, algo, run_config = spec.build()
        horizon = run_config.warmup_cycles + run_config.measure_cycles
        interval = (
            args.interval
            if args.interval is not None
            else default_probe_interval(horizon)
        )
        results = simulate_batch(
            topo, algo, run_config, args.replications, probe_interval=interval
        )
    except ConfigurationError as exc:
        print(f"starnet watch: error: {exc}", file=sys.stderr)
        return 2
    series = results[0].timeseries or {}
    adequacy = warmup_adequacy(
        series, run_config.warmup_cycles, measure_end=horizon
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            meta = {
                "type": "meta",
                "topology": args.topology,
                "order": args.order,
                "algorithm": args.algorithm,
                "workload": run_config.workload_spec().canonical,
                "rate": rate,
                "replications": args.replications,
                "interval": series.get("interval", interval),
                "total_vcs": series.get("total_vcs", args.vcs),
                "samples": len(series.get("cycles", [])),
                "warmup_adequacy": adequacy,
            }
            handle.write(json.dumps(meta, sort_keys=True) + "\n")
            for i, cycle in enumerate(series.get("cycles", [])):
                handle.write(
                    json.dumps(
                        {
                            "type": "sample",
                            "cycle": cycle,
                            "in_flight": series["in_flight"][i],
                            "completed": series["completed"][i],
                            "throughput": series["throughput"][i],
                            "backlog": series["backlog"][i],
                            "occupancy": series["occupancy"][i],
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
        print(f"probes: {args.out} ({meta['samples']} samples)")
        return 0
    print(
        f"watch[{args.topology} order={args.order} {args.algorithm}] "
        f"workload={run_config.workload_spec().canonical} rate={rate} "
        f"M={args.message_length} V={args.vcs} "
        f"replications={args.replications} interval={interval} "
        f"samples={len(series.get('cycles', []))}"
    )
    print()
    for name in ("in_flight", "throughput", "backlog"):
        values = series.get(name, [])
        peak = max(values) if values else 0
        print(f"  {name:<11} {sparkline(values)}  peak={round(peak, 4)}")
    rows = series_rows(
        series, every=max(1, len(series.get("cycles", [])) // max(1, args.rows))
    )
    headers = ["cycle", "in_flight", "throughput", "backlog", "max_busy_vcs"]
    print()
    print(render_table(headers, [[row[h] for h in headers] for row in rows]))
    print()
    if adequacy["adequate"]:
        print(
            f"warmup: ok (warmup_cycles={adequacy['warmup_cycles']}, "
            f"MSER truncation at cycle {adequacy['truncation_cycle']})"
        )
    else:
        print(
            f"warmup: WARNING: warmup_cycles={adequacy['warmup_cycles']} ends "
            f"before the measured transient (MSER truncation at cycle "
            f"{adequacy['truncation_cycle']}, post-warmup effect "
            f"{adequacy['post_warmup_effect']} sd) — consider --warmup >= "
            f"{adequacy['truncation_cycle']}"
        )
    return 0


def _run_trace_command(args) -> int:
    from pathlib import Path

    from repro.obs import export_chrome_trace, read_events, span_tree

    if args.trace_command == "export":
        events_path = Path(args.events)
        if not events_path.exists():
            print(
                f"starnet trace: error: no event file at {events_path}",
                file=sys.stderr,
            )
            return 2
        out = (
            Path(args.out)
            if args.out
            else events_path.with_name(events_path.stem + ".trace.json")
        )
        doc = export_chrome_trace(events_path, out, trace_id=args.trace_id)
        spans = [e for e in read_events(events_path) if e.get("type") == "span"]
        if args.trace_id is not None:
            spans = [s for s in spans if s.get("trace_id") == args.trace_id]
        traces = {s.get("trace_id") for s in spans}
        roots = len(span_tree(spans).get(None, []))
        print(
            f"trace export: {len(doc['traceEvents'])} spans, "
            f"{len(traces)} trace(s), {roots} root span(s) -> {out}"
        )
        return 0
    return 2


def _run_sim_command(args) -> int:
    from repro.simulation import summarize_batch
    from repro.simulation.backends import simulate, simulate_batch
    from repro.simulation.config import resolve_threads

    try:
        if args.replications < 1:
            raise ConfigurationError("--replications must be >= 1")
        if args.jobs is not None:
            # Eager validation; the object engine ignores the value.
            resolve_threads(args.jobs, None)
        # One declarative description of the run — the Scenario facade
        # canonicalises the workload and builds the SimSpec.
        scenario = Scenario(
            topology=args.topology,
            order=args.order,
            algorithm=args.algorithm,
            message_length=args.message_length,
            total_vcs=args.vcs,
            workload=args.workload,
            quality=args.quality,
            warmup_cycles=args.warmup,
            measure_cycles=args.measure,
            drain_cycles=args.drain,
            engine=args.engine,
            seed=args.seed,
        )
        spec = scenario.sim_spec(args.rate)
        config = spec.config
        # Topology/algorithm names only resolve when the spec is built,
        # so run() failures are configuration errors too.
        topo, algo, run_config = spec.build()
        if args.replications == 1:
            result = simulate(topo, algo, run_config, threads=args.jobs)
            results = [result]
        else:
            results = simulate_batch(
                topo, algo, run_config, args.replications, threads=args.jobs
            )
            result = results[0]
    except ConfigurationError as exc:
        print(f"starnet sim: error: {exc}", file=sys.stderr)
        return 2
    print(
        f"sim[{args.topology} order={args.order} {args.algorithm}] "
        f"workload={config.workload_spec().canonical} rate={args.rate} "
        f"M={args.message_length} V={args.vcs} seed={args.seed} "
        f"engine={args.engine}"
        + (f" replications={args.replications}" if args.replications > 1 else "")
    )
    if args.replications > 1:
        headers = ["seed"] + list(results[0].as_dict().keys())
        rows = [
            [config.seed + i, *res.as_dict().values()]
            for i, res in enumerate(results)
        ]
        print(render_table(headers, rows))
        print()
        pooled = summarize_batch(results)
        scalars = [
            (k, v) for k, v in pooled.items() if not isinstance(v, (list, dict))
        ]
        print(render_table(["pooled metric", "value"], scalars))
    else:
        pooled = None
        rows = [[key, value] for key, value in result.as_dict().items()]
        print(render_table(["metric", "value"], rows))
    if args.hops:
        if pooled is not None:
            hop_rows = pooled.get("hop_blocking") or []
            title = f"pooled per-hop blocking ({args.replications} replications):"
        else:
            hop_rows = (
                result.hop_blocking.as_rows() if result.hop_blocking is not None else []
            )
            title = None
        if hop_rows:
            headers = list(hop_rows[0].keys())
            print()
            if title:
                print(title)
            print(render_table(headers, [[row[h] for h in headers] for row in hop_rows]))
    return 0


def _bound_check_table(scenario, record, cache_dir) -> tuple[str, bool, "object"]:
    """The model/sim/bound cross-check of one validated workload.

    Returns the rendered three-provenance table, whether any *finite*
    bound fell below the simulated mean (a soundness violation — upper
    bounds may be loose or infinite, never low), and the bound rows.
    """
    import math

    bound_rows = scenario.replace(workload=record.workload).bound(
        record.rates, cache_dir=cache_dir
    )
    table = []
    violated = False
    for point, brow in zip(record.comparison.points, bound_rows):
        bound = brow.latency
        worst = brow.meta.get("delay_bound_worst")
        flag = ""
        if math.isfinite(bound) and bound < point.sim_latency:
            flag = "BOUND<SIM!"
            violated = True
        table.append(
            [
                point.generation_rate,
                round(point.model_latency, 3),
                round(point.sim_latency, 3),
                "inf" if not math.isfinite(bound) else round(bound, 1),
                "inf" if brow.saturated or worst is None else round(worst, 1),
                flag,
            ]
        )
    rendered = render_table(
        ["rate", "model", "sim", "bound", "bound_worst", "check"], table
    )
    return rendered, violated, bound_rows


def _warmup_adequacy_report(scenario, fractions) -> dict:
    """Probe one array-engine run at the top load fraction and judge
    the scenario's warmup window against the measured transient."""
    from repro.obs import adequacy_probe_interval, warmup_adequacy
    from repro.simulation.backends import simulate

    rate = round(max(fractions) * scenario.saturation_rate(), 6)
    spec = scenario.replace(engine="array").sim_spec(rate)
    topo, algo, config = spec.build()
    horizon = config.warmup_cycles + config.measure_cycles
    result = simulate(
        topo, algo, config, probe_interval=adequacy_probe_interval(horizon)
    )
    report = warmup_adequacy(
        result.timeseries, config.warmup_cycles, measure_end=horizon
    )
    report["rate"] = rate
    return report


def _run_validate_command(args) -> int:
    from repro.api.presets import preset_suite
    from repro.api.results import ResultSet
    from repro.validation.workloads import (
        DEFAULT_WORKLOADS,
        model_hop_profile,
        validate_workloads,
    )

    try:
        if args.replications < 1:
            raise ConfigurationError("--replications must be >= 1")
        fractions = tuple(float(tok) for tok in args.fractions.split(","))
        if args.preset:
            # A standing cross-check suite: each preset is one scenario +
            # workload with a *stated* tolerance (overridable by
            # --tolerance); exceeding it fails the run.  Scenario flags
            # would silently contradict the preset, so they are rejected.
            conflicting = [
                flag
                for flag, value in (
                    ("--order", args.order),
                    ("--message-length", args.message_length),
                    ("--vcs", args.vcs),
                    ("--quality", args.quality),
                    ("--warmup", args.warmup),
                    ("--measure", args.measure),
                    ("--drain", args.drain),
                    ("--seed", args.seed),
                    ("--engine", args.engine),
                )
                if value is not None
            ]
            if args.workload:
                conflicting.append("--workload")
            if conflicting:
                raise ConfigurationError(
                    f"--preset fixes the scenario; drop {', '.join(conflicting)}"
                )
            jobs = [
                (
                    p.scenario,
                    (p.workload,),
                    p.tolerance if args.tolerance is None else args.tolerance,
                )
                for p in preset_suite(args.preset)
            ]
        else:
            # The shared validation knobs travel as one Scenario facade.
            def _resolve(name):
                value = getattr(args, name)
                return value if value is not None else _VALIDATE_DEFAULTS[name]

            scenario = Scenario(
                topology="star",
                order=_resolve("order"),
                message_length=_resolve("message_length"),
                total_vcs=_resolve("vcs"),
                quality=_resolve("quality"),
                warmup_cycles=args.warmup,
                measure_cycles=args.measure,
                drain_cycles=args.drain,
                seed=_resolve("seed"),
                engine=_resolve("engine"),
            )
            jobs = [
                (
                    scenario,
                    tuple(args.workload) if args.workload else DEFAULT_WORKLOADS,
                    args.tolerance,
                )
            ]
        results = []
        for scenario, workloads, tolerance in jobs:
            for record in validate_workloads(
                workloads,
                scenario=scenario,
                load_fractions=fractions,
                workers=args.workers,
                jobs=args.jobs,
                tolerance=tolerance,
                replications=args.replications,
                hops=args.hops,
                cache_dir=args.cache_dir,
            ):
                results.append((scenario, record))
    except (ConfigurationError, ValueError) as exc:
        print(f"starnet validate: error: {exc}", file=sys.stderr)
        return 2
    failed = False
    all_rows = ResultSet()
    for scenario, record in results:
        print(record.summary())
        for p in record.comparison.points:
            print(
                f"  rate={p.generation_rate:<10g} model={p.model_latency:<10.3f} "
                f"sim={p.sim_latency:<10.3f} err="
                + ("n/a" if p.relative_error != p.relative_error else f"{100 * p.relative_error:.1f}%")
            )
        if record.rows is not None:
            all_rows = all_rows + record.rows
        if args.bounds:
            try:
                rendered, violated, bound_rows = _bound_check_table(
                    scenario, record, args.cache_dir
                )
            except ConfigurationError as exc:
                print(f"starnet validate: error: {exc}", file=sys.stderr)
                return 2
            print("  model vs sim vs bound:")
            print(rendered)
            all_rows = all_rows + bound_rows
            if violated:
                failed = True
        if args.hops and record.hop_profiles:
            for rate, rows in record.hop_profiles:
                if not rows:
                    continue
                model_profile = model_hop_profile(
                    record.workload,
                    rate,
                    order=scenario.order,
                    message_length=scenario.message_length,
                    total_vcs=scenario.total_vcs,
                )
                headers = list(rows[0].keys()) + [
                    "model_p_block",
                    "model_blocking_delay",
                ]
                table = []
                for row in rows:
                    pred = model_profile.get(row["hop"], {})
                    table.append(
                        [*row.values(), pred.get("p_block", ""), pred.get("blocking_delay", "")]
                    )
                print(f"  per-hop blocking at rate={rate:g}:")
                print(render_table(headers, table))
        if record.passed is False:
            failed = True
    if not args.no_warmup_check:
        # One probed run per distinct scenario at the top load fraction:
        # warn (without failing) when the configured warmup window ends
        # before the MSER-detected transient.  Silent when adequate.
        seen: set[str] = set()
        for scenario, _record in results:
            fp = scenario.fingerprint()
            if fp in seen:
                continue
            seen.add(fp)
            try:
                report = _warmup_adequacy_report(scenario, fractions)
            except ConfigurationError:
                continue
            if not report["adequate"]:
                print(
                    f"warmup check: WARNING: warmup_cycles="
                    f"{report['warmup_cycles']} ends before the measured "
                    f"transient at rate={report['rate']:g} (MSER truncation "
                    f"at cycle {report['truncation_cycle']}, post-warmup "
                    f"effect {report['post_warmup_effect']} sd) — consider "
                    f"warmup >= {report['truncation_cycle']}"
                )
    if args.out:
        path = all_rows.save(args.out)
        print(f"rows: {path}")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "figure1":
        series = reproduce_panel(
            args.panel,
            include_sim=not args.no_sim,
            quality=args.quality,
            seed=args.seed,
            workers=args.workers,
        )
        print(render_panel(series))
        if args.save:
            path = panel_record(series).save(args.save)
            print(f"\nsaved: {path}")
    elif args.command == "properties":
        rows = comparison_table()
        print(
            render_table(
                ["name", "nodes", "degree", "diameter", "avg distance"],
                [
                    [r.name, r.nodes, r.degree, r.diameter, r.average_distance]
                    for r in rows
                ],
            )
        )
    elif args.command == "scale":
        from repro.experiments.scale import scale_study_with_rows

        rec, rows = scale_study_with_rows(
            n_values=tuple(range(4, args.max_n + 1)), workers=args.workers
        )
        print(_record_table(rec))
        if args.out:
            path = rows.save(args.out)
            print(f"rows: {path}")
    elif args.command == "ablation":
        if args.out and args.name != "vcsplit":
            print(
                "starnet ablation: error: --out is only supported for the "
                "vcsplit ablation (campaign-kind rows)",
                file=sys.stderr,
            )
            return 2
        if args.name == "vcsplit" and args.out:
            # One campaign run feeds both the printed table and the rows.
            rec, rows = ablations.vc_split_study_with_rows(workers=args.workers)
            print(_record_table(rec))
            path = rows.save(args.out)
            print(f"rows: {path}")
            return 0
        runner = {
            "blocking": ablations.blocking_variant_study,
            "routing": ablations.routing_comparison,
            "vcsplit": ablations.vc_split_study,
            "hypercube": ablations.star_vs_hypercube,
            "hypercube-model": ablations.star_vs_hypercube_model,
            "blocking-profile": ablations.blocking_profile_study,
        }[args.name]
        print(_record_table(runner(workers=args.workers)))
    elif args.command == "distance":
        rows = []
        for n in range(3, args.max_n + 1):
            closed = star_average_distance_closed_form(n)
            exact = StarGraph(n).exact_average_distance() if n <= 7 else float("nan")
            rows.append([f"S{n}", closed, exact, abs(closed - exact)])
        print(render_table(["network", "Eq. (2)", "enumeration", "|diff|"], rows))
    elif args.command == "campaign":
        return _run_campaign_command(args)
    elif args.command == "serve":
        from repro.service.server import run_server

        try:
            run_server(
                args.store,
                host=args.host,
                port=args.port,
                cache_dir=args.cache_dir,
                refine=not args.no_refine,
                refine_jobs=args.jobs,
                trace_events=args.trace_events,
            )
        except ConfigurationError as exc:
            print(f"starnet serve: error: {exc}", file=sys.stderr)
            return 2
        return 0
    elif args.command == "sim":
        return _run_sim_command(args)
    elif args.command == "profile":
        return _run_profile_command(args)
    elif args.command == "watch":
        return _run_watch_command(args)
    elif args.command == "trace":
        return _run_trace_command(args)
    elif args.command == "validate":
        return _run_validate_command(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
