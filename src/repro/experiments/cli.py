"""Command-line entry point: ``starnet <command> [options]``.

Commands
--------
figure1      Reproduce a Figure-1 panel (model + optional simulation).
properties   Section-2 topology comparison table (star vs. hypercube).
scale        Large-n model-only study.
ablation     Run one of the named ablation studies.
distance     Average-distance table (Eq. 2 vs. exact enumeration).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ablations
from repro.experiments.figure1 import FIGURE1_PANELS, panel_record, render_panel, reproduce_panel
from repro.experiments.scale import scale_study
from repro.experiments.tables import render_table
from repro.topology.properties import comparison_table
from repro.topology.star import StarGraph, star_average_distance_closed_form

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="starnet",
        description="Star-graph wormhole latency model reproduction (IPDPS 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure1", help="reproduce a Figure-1 panel")
    fig.add_argument("--panel", choices=sorted(FIGURE1_PANELS), default="a")
    fig.add_argument("--quality", choices=("smoke", "quick", "full"), default="quick")
    fig.add_argument("--no-sim", action="store_true", help="model curves only")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--save", metavar="DIR", help="write a JSON record to DIR")

    sub.add_parser("properties", help="topology comparison table (section 2)")

    sc = sub.add_parser("scale", help="large-n model study")
    sc.add_argument("--max-n", type=int, default=9)

    ab = sub.add_parser("ablation", help="run a named ablation")
    ab.add_argument(
        "name",
        choices=(
            "blocking",
            "routing",
            "vcsplit",
            "hypercube",
            "hypercube-model",
            "blocking-profile",
        ),
    )

    dist = sub.add_parser("distance", help="average-distance table (Eq. 2)")
    dist.add_argument("--max-n", type=int, default=7)
    return parser


def _record_table(rec) -> str:
    if not rec.rows:
        return "(no rows)"
    headers = list(rec.rows[0].keys())
    rows = [[row.get(h) for h in headers] for row in rec.rows]
    return render_table(headers, rows)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "figure1":
        series = reproduce_panel(
            args.panel,
            include_sim=not args.no_sim,
            quality=args.quality,
            seed=args.seed,
        )
        print(render_panel(series))
        if args.save:
            path = panel_record(series).save(args.save)
            print(f"\nsaved: {path}")
    elif args.command == "properties":
        rows = comparison_table()
        print(
            render_table(
                ["name", "nodes", "degree", "diameter", "avg distance"],
                [
                    [r.name, r.nodes, r.degree, r.diameter, r.average_distance]
                    for r in rows
                ],
            )
        )
    elif args.command == "scale":
        rec = scale_study(n_values=tuple(range(4, args.max_n + 1)))
        print(_record_table(rec))
    elif args.command == "ablation":
        runner = {
            "blocking": ablations.blocking_variant_study,
            "routing": ablations.routing_comparison,
            "vcsplit": ablations.vc_split_study,
            "hypercube": ablations.star_vs_hypercube,
            "hypercube-model": ablations.star_vs_hypercube_model,
            "blocking-profile": ablations.blocking_profile_study,
        }[args.name]
        print(_record_table(runner()))
    elif args.command == "distance":
        rows = []
        for n in range(3, args.max_n + 1):
            closed = star_average_distance_closed_form(n)
            exact = StarGraph(n).exact_average_distance() if n <= 7 else float("nan")
            rows.append([f"S{n}", closed, exact, abs(closed - exact)])
        print(render_table(["network", "Eq. (2)", "enumeration", "|diff|"], rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
