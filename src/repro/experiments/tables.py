"""Plain-text table rendering for experiment output.

The paper reports its evaluation as plotted series; the harness prints
the same series as aligned ASCII tables (one row per operating point) so
results can be diffed and archived without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value) -> str:
    """Human-readable cell: floats rounded, inf/nan spelled out."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "saturated"
        if math.isnan(value):
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.5f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned table with a header rule."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(str(c).rjust(w) for c, w in zip(row, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)
