"""Reproduction of Figure 1 — the paper's entire evaluation.

Each panel plots mean message latency against the traffic generation
rate for the 120-node 5-star under Enhanced-Nbc routing:

* panel (a): V = 6 virtual channels per physical channel,
* panel (b): V = 9,
* panel (c): V = 12,

each with model curves for M = 32 and 64 flits overlaid on simulation
points.  The paper's x-axes end just past the M = 32 saturation point
(0.015, 0.015 and 0.02 respectively) — the model reproduces those ranges,
so the sweep grid here is expressed as fractions of the model's predicted
saturation rate rather than hard-coded rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.api.quality import sim_quality_config
from repro.api.scenario import Scenario, run_units
from repro.campaign.grid import WorkUnit
from repro.core.model import ModelResult, StarLatencyModel
from repro.experiments.records import ExperimentRecord
from repro.experiments.tables import render_table
from repro.simulation import SimulationResult
from repro.utils.exceptions import ConfigurationError
from repro.validation.compare import CurveComparison, OperatingPoint, compare_curves

__all__ = [
    "Figure1Panel",
    "FIGURE1_PANELS",
    "PanelSeries",
    "sim_quality_config",
    "panel_units",
    "reproduce_panel",
    "render_panel",
]

#: Load grid as fractions of the model's M=32 saturation rate.
_LOAD_FRACTIONS = (0.15, 0.30, 0.45, 0.60, 0.72, 0.82, 0.90)


@dataclass(frozen=True)
class Figure1Panel:
    """One panel of Figure 1."""

    label: str
    total_vcs: int
    n: int = 5
    message_lengths: tuple[int, ...] = (32, 64)


FIGURE1_PANELS: dict[str, Figure1Panel] = {
    "a": Figure1Panel(label="a", total_vcs=6),
    "b": Figure1Panel(label="b", total_vcs=9),
    "c": Figure1Panel(label="c", total_vcs=12),
}

# sim_quality_config now lives in repro.api.quality (imported above and
# re-exported here for backwards compatibility): one window table shared
# by the Scenario facade, the validation layer and this module.


@dataclass(frozen=True)
class PanelSeries:
    """Model and (optional) simulation series for one (panel, M) pair."""

    panel: Figure1Panel
    message_length: int
    rates: tuple[float, ...]
    model: tuple[ModelResult, ...]
    sim: tuple[SimulationResult, ...] | None

    def comparison(self) -> CurveComparison | None:
        """Model-vs-sim accuracy over the mutually stable points."""
        if self.sim is None:
            return None
        points = [
            OperatingPoint(
                generation_rate=r,
                model_latency=m.latency,
                sim_latency=s.mean_latency,
                model_saturated=m.saturated,
                sim_saturated=s.saturated,
            )
            for r, m, s in zip(self.rates, self.model, self.sim)
        ]
        return compare_curves(points)


def load_grid(panel: Figure1Panel, message_length: int = 32) -> tuple[float, ...]:
    """Generation-rate sweep for a panel, anchored to model saturation."""
    model = StarLatencyModel(panel.n, message_length, panel.total_vcs)
    sat = model.saturation_rate()
    if not math.isfinite(sat):
        raise ConfigurationError(f"model does not saturate for panel {panel.label}")
    return tuple(round(frac * sat, 6) for frac in _LOAD_FRACTIONS)


def panel_units(
    panel: Figure1Panel,
    rates: tuple[float, ...],
    *,
    include_sim: bool = True,
    quality: str = "quick",
    seed: int = 0,
) -> list[WorkUnit]:
    """Campaign work units for one panel, in presentation order.

    Built through the :class:`~repro.api.scenario.Scenario` facade; the
    unit params (and hence content-hash keys) are identical to the
    pre-facade hand-built specs.
    """
    units: list[WorkUnit] = []
    for m in panel.message_lengths:
        scenario = Scenario(
            topology="star",
            order=panel.n,
            algorithm="enhanced_nbc",
            message_length=m,
            total_vcs=panel.total_vcs,
            quality=quality,
            seed=seed,
        )
        units.extend(scenario.model_unit(r) for r in rates)
        if include_sim:
            units.extend(scenario.sim_unit(r) for r in rates)
    return units


def reproduce_panel(
    label: str,
    *,
    include_sim: bool = True,
    quality: str = "quick",
    seed: int = 0,
    workers: int = 1,
) -> list[PanelSeries]:
    """Regenerate one Figure-1 panel (both message lengths).

    All operating points — model and simulation, both message lengths —
    are expanded into campaign work units and executed through
    :func:`repro.campaign.runner.run_campaign`; ``workers > 1`` fans the
    panel out over a process pool.
    """
    panel = FIGURE1_PANELS[label]
    # The paper sweeps each message length over the same axis; we anchor
    # the grid to the M=32 saturation (the panel's x-range).
    rates = load_grid(panel, message_length=panel.message_lengths[0])
    units = panel_units(
        panel, rates, include_sim=include_sim, quality=quality, seed=seed
    )
    results = run_units(units, workers=workers).results
    out: list[PanelSeries] = []
    per_m = len(rates) * (2 if include_sim else 1)
    for idx, m in enumerate(panel.message_lengths):
        block = results[idx * per_m : (idx + 1) * per_m]
        model_results = tuple(block[: len(rates)])
        sim_results = tuple(block[len(rates) :]) if include_sim else None
        out.append(
            PanelSeries(
                panel=panel,
                message_length=m,
                rates=rates,
                model=model_results,
                sim=sim_results,
            )
        )
    return out


def render_panel(series: list[PanelSeries]) -> str:
    """ASCII rendering of one panel (the paper's plotted series as rows)."""
    blocks = []
    for s in series:
        headers = ["rate", "model latency", "model V̄", "model rho"]
        if s.sim is not None:
            headers += ["sim latency", "sim ±CI", "sim mux", "sim saturated"]
        rows = []
        for i, r in enumerate(s.rates):
            row = [
                r,
                s.model[i].latency,
                s.model[i].multiplexing,
                s.model[i].rho,
            ]
            if s.sim is not None:
                sim = s.sim[i]
                row += [sim.mean_latency, sim.latency_ci, sim.mean_multiplexing, sim.saturated]
            rows.append(row)
        title = (
            f"Figure 1({s.panel.label}): S{s.panel.n}, V={s.panel.total_vcs}, "
            f"M={s.message_length}"
        )
        comp = s.comparison()
        if comp is not None:
            title += f"   [{comp.summary()}]"
        blocks.append(title + "\n" + render_table(headers, rows))
    return "\n\n".join(blocks)


def panel_record(series: list[PanelSeries]) -> ExperimentRecord:
    """Persistable record of one reproduced panel."""
    panel = series[0].panel
    rec = ExperimentRecord(
        name=f"figure1{panel.label}",
        params={"n": panel.n, "total_vcs": panel.total_vcs},
    )
    for s in series:
        for i, r in enumerate(s.rates):
            row = {"message_length": s.message_length, "rate": r}
            row.update({f"model_{k}": v for k, v in s.model[i].as_dict().items()})
            if s.sim is not None:
                row.update({f"sim_{k}": v for k, v in s.sim[i].as_dict().items()})
            rec.add_row(**row)
    return rec
