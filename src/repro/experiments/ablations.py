"""Ablation studies around the paper's design choices.

These are the supporting experiments DESIGN.md commits to:

* **blocking-variant** — the exact eligible-VC arithmetic vs. the
  paper-literal group A/B-/B+ counts (OCR reconstruction check);
* **routing comparison** — greedy vs. NHop vs. Nbc vs. Enhanced-Nbc in
  simulation, reproducing the companion-paper claim that Enhanced-Nbc
  performs best (the premise of the paper's model);
* **VC split** — how performance depends on the class-a/class-b split of
  a fixed V (the "minimum escape channels" design rule);
* **star vs. hypercube** — the paper's stated future work, run on the
  simulator for equal-order networks and on the model under a fair
  per-node wiring budget;
* **blocking profile** — per-hop measured blocking vs. the model's
  Eq. (6) terms.

Every study expands its operating points into campaign work units and
executes them through the Scenario facade's
:func:`~repro.api.scenario.run_units` funnel — the one code path shared
with ``figure1``, ``scale`` and the ``starnet campaign`` CLI — so each
accepts ``workers`` for process-pool fan-out.
"""

from __future__ import annotations

import math

from repro.api.scenario import Scenario, run_units
from repro.campaign.grid import WorkUnit
from repro.core.blocking import BlockingVariant
from repro.core.model import HypercubeLatencyModel, StarLatencyModel
from repro.experiments.records import ExperimentRecord, study_record, study_resultset
from repro.routing.vc_classes import VcConfig
from repro.topology.hypercube import Hypercube, equivalent_hypercube_dimension

__all__ = [
    "blocking_variant_study",
    "routing_comparison",
    "vc_split_units",
    "vc_split_study",
    "vc_split_study_with_rows",
    "star_vs_hypercube",
    "star_vs_hypercube_model",
    "blocking_profile_study",
]


def _sim_unit(
    *,
    topology: str,
    order: int,
    algorithm: str,
    message_length: int,
    generation_rate: float,
    total_vcs: int,
    quality_windows,
    seed: int,
) -> WorkUnit:
    warmup, measure, drain = quality_windows
    scenario = Scenario(
        topology=topology,
        order=order,
        algorithm=algorithm,
        message_length=message_length,
        total_vcs=total_vcs,
        warmup_cycles=warmup,
        measure_cycles=measure,
        drain_cycles=drain,
        seed=seed,
    )
    return scenario.sim_unit(generation_rate)


def blocking_variant_study(
    n: int = 5,
    total_vcs: int = 6,
    message_length: int = 32,
    rates=None,
    workers: int = 1,
) -> ExperimentRecord:
    """Model latency under both blocking arithmetics (no simulation)."""
    rec = ExperimentRecord(
        name="ablation_blocking_variant",
        params={"n": n, "total_vcs": total_vcs, "message_length": message_length},
    )
    if rates is None:
        exact = StarLatencyModel(n, message_length, total_vcs, variant=BlockingVariant.EXACT)
        sat = exact.saturation_rate()
        rates = [round(f * sat, 6) for f in (0.2, 0.4, 0.6, 0.8, 0.9)]
    units = []
    for r in rates:
        for variant in ("exact", "paper"):
            scenario = Scenario(
                order=n,
                message_length=message_length,
                total_vcs=total_vcs,
                variant=variant,
            )
            units.append(scenario.model_unit(r))
    results = run_units(units, workers=workers).results
    for i, r in enumerate(rates):
        re_, rp = results[2 * i], results[2 * i + 1]
        rec.add_row(
            rate=r,
            exact_latency=re_.latency,
            paper_latency=rp.latency,
            exact_saturated=re_.saturated,
            paper_saturated=rp.saturated,
        )
    return rec


def routing_comparison(
    n: int = 4,
    total_vcs: int = 6,
    message_length: int = 16,
    rates=(0.005, 0.010, 0.015, 0.020),
    quality_windows=(1_500, 6_000, 8_000),
    seed: int = 0,
    workers: int = 1,
) -> ExperimentRecord:
    """Simulated latency of all four routing algorithms on S_n."""
    algorithms = ("greedy", "nhop", "nbc", "enhanced_nbc")
    rec = ExperimentRecord(
        name="ablation_routing_comparison",
        params={"n": n, "total_vcs": total_vcs, "message_length": message_length},
    )
    units = [
        _sim_unit(
            topology="star",
            order=n,
            algorithm=name,
            message_length=message_length,
            generation_rate=rate,
            total_vcs=total_vcs,
            quality_windows=quality_windows,
            seed=seed,
        )
        for rate in rates
        for name in algorithms
    ]
    results = run_units(units, workers=workers).results
    it = iter(results)
    for rate in rates:
        row: dict = {"rate": rate}
        for name in algorithms:
            res = next(it)
            row[f"{name}_latency"] = res.mean_latency
            row[f"{name}_saturated"] = res.saturated
        rec.add_row(**row)
    return rec


def vc_split_units(
    n: int = 5,
    total_vcs: int = 9,
    message_length: int = 32,
    rate: float = 0.012,
) -> list[WorkUnit]:
    """The ``vc_split_point`` work units of one VC-split ablation."""
    diameter = (3 * (n - 1)) // 2
    min_escape = diameter // 2 + 1
    units = []
    for escape in range(min_escape, total_vcs + 1):
        cfg = VcConfig(num_adaptive=total_vcs - escape, num_escape=escape)
        scenario = Scenario(
            order=n,
            message_length=message_length,
            total_vcs=total_vcs,
            num_adaptive=cfg.num_adaptive,
            num_escape=cfg.num_escape,
        )
        units.append(scenario.model_unit(rate, kind="vc_split_point"))
    return units


def vc_split_study_with_rows(
    n: int = 5,
    total_vcs: int = 9,
    message_length: int = 32,
    rate: float = 0.012,
    workers: int = 1,
):
    """One campaign run feeding both the record and the ResultSet view."""
    result = run_units(
        vc_split_units(n, total_vcs, message_length, rate), workers=workers
    )
    record = study_record(
        "ablation_vc_split",
        {"n": n, "total_vcs": total_vcs, "message_length": message_length, "rate": rate},
        result,
    )
    return record, study_resultset(result)


def vc_split_study(
    n: int = 5,
    total_vcs: int = 9,
    message_length: int = 32,
    rate: float = 0.012,
    workers: int = 1,
) -> ExperimentRecord:
    """Model latency as a function of the class-a/class-b split of V.

    The escape layer needs at least ``floor(diameter/2) + 1`` classes;
    every extra class beyond that is one fewer adaptive channel.  The
    paper's rule (minimum escape) should dominate.
    """
    return vc_split_study_with_rows(n, total_vcs, message_length, rate, workers)[0]


def star_vs_hypercube(
    n: int = 4,
    total_vcs: int = 6,
    message_length: int = 16,
    rates=(0.005, 0.010, 0.015, 0.020),
    quality_windows=(1_500, 6_000, 8_000),
    seed: int = 0,
    workers: int = 1,
) -> ExperimentRecord:
    """Simulated star vs. equivalent hypercube (paper's future work).

    The hypercube uses the smallest k with 2**k >= n! and the same
    Enhanced-Nbc machinery (Q_k is bipartite, so negative-hop routing
    carries over unchanged).
    """
    star_nodes = math.factorial(n)
    k = equivalent_hypercube_dimension(star_nodes)
    star_name, cube_name = f"S{n}", f"Q{k}"
    rec = ExperimentRecord(
        name="ablation_star_vs_hypercube",
        params={
            "star": star_name,
            "hypercube": cube_name,
            "total_vcs": total_vcs,
            "message_length": message_length,
        },
    )
    topologies = (("star", n, star_name), ("hypercube", k, cube_name))
    units = [
        _sim_unit(
            topology=topology,
            order=order,
            algorithm="enhanced_nbc",
            message_length=message_length,
            generation_rate=rate,
            total_vcs=total_vcs,
            quality_windows=quality_windows,
            seed=seed,
        )
        for rate in rates
        for topology, order, _ in topologies
    ]
    results = run_units(units, workers=workers).results
    it = iter(results)
    for rate in rates:
        row: dict = {"rate": rate}
        for _, _, name in topologies:
            res = next(it)
            row[f"{name}_latency"] = res.mean_latency
            row[f"{name}_saturated"] = res.saturated
        rec.add_row(**row)
    return rec


def star_vs_hypercube_model(
    n: int = 5,
    message_length: int = 32,
    pin_budget: int | None = None,
    workers: int = 1,
) -> ExperimentRecord:
    """Model-level star vs. equivalent hypercube under a fair constraint.

    The paper's future work asks for a comparison "under different
    technological constraints".  The constraint here is a per-node wiring
    budget: ``degree * V`` virtual channels per node is held constant, so
    the higher-degree hypercube gets proportionally fewer VCs per
    physical channel.  Defaults to the budget of S_n with V = 12 (the
    richest configuration of Figure 1).
    """
    k = equivalent_hypercube_dimension(math.factorial(n))
    if pin_budget is None:
        pin_budget = (n - 1) * 12
    star_vcs = pin_budget // (n - 1)
    cube_vcs = max(pin_budget // k, Hypercube(k).min_escape_classes() + 1)
    star_model = StarLatencyModel(n, message_length, star_vcs)
    cube_model = HypercubeLatencyModel(k, message_length, cube_vcs)
    rec = ExperimentRecord(
        name="ablation_star_vs_hypercube_model",
        params={
            "star": f"S{n}",
            "hypercube": f"Q{k}",
            "message_length": message_length,
            "pin_budget": pin_budget,
            "star_vcs": star_vcs,
            "cube_vcs": cube_vcs,
        },
    )
    star_sat = star_model.saturation_rate()
    cube_sat = cube_model.saturation_rate()
    rec.params["star_saturation"] = star_sat
    rec.params["cube_saturation"] = cube_sat
    star_scenario = Scenario(
        topology="star", order=n, message_length=message_length, total_vcs=star_vcs
    )
    cube_scenario = Scenario(
        topology="hypercube", order=k, message_length=message_length, total_vcs=cube_vcs
    )
    rates = [
        round(frac * min(star_sat, cube_sat), 6) for frac in (0.2, 0.4, 0.6, 0.8)
    ]
    units = []
    for rate in rates:
        units.append(star_scenario.model_unit(rate))
        units.append(cube_scenario.model_unit(rate))
    results = run_units(units, workers=workers).results
    for i, rate in enumerate(rates):
        s, c = results[2 * i], results[2 * i + 1]
        rec.add_row(
            rate=rate,
            star_latency=s.latency,
            cube_latency=c.latency,
            star_multiplexing=s.multiplexing,
            cube_multiplexing=c.multiplexing,
        )
    return rec


def blocking_profile_study(
    n: int = 5,
    total_vcs: int = 6,
    message_length: int = 32,
    rate: float = 0.010,
    quality_windows=(2_000, 10_000, 12_000),
    seed: int = 0,
    workers: int = 1,
) -> ExperimentRecord:
    """Per-hop blocking: model P_block(k)*w vs. measured (Eq. 6 check).

    Runs one simulation with hop instrumentation and tabulates, per hop
    index, the measured blocking probability and conditional wait next to
    the model's network-average prediction for the dominant (diameter-
    distance) destination class.
    """
    unit = _sim_unit(
        topology="star",
        order=n,
        algorithm="enhanced_nbc",
        message_length=message_length,
        generation_rate=rate,
        total_vcs=total_vcs,
        quality_windows=quality_windows,
        seed=seed,
    )
    sim = run_units([unit], workers=workers).results[0]
    model = StarLatencyModel(n, message_length, total_vcs)
    pred = model.evaluate(rate)
    from repro.core.occupancy import vc_occupancy

    occupancy = vc_occupancy(pred.channel_rate, pred.network_latency, model.vc.total)
    longest = max(model.stats.classes, key=lambda c: c.distance)
    rec = ExperimentRecord(
        name="ablation_blocking_profile",
        params={
            "n": n,
            "total_vcs": total_vcs,
            "message_length": message_length,
            "rate": rate,
            "model_latency": pred.latency,
            "sim_latency": sim.mean_latency,
            "model_channel_wait": pred.channel_wait,
        },
    )
    for row in sim.hop_blocking.as_rows():
        k = row["hop"]
        model_p = 0.5 * (
            model.blocking.hop_blocking(occupancy, longest, k, 0)
            + model.blocking.hop_blocking(occupancy, longest, k, 1)
        ) if k <= longest.distance else None
        rec.add_row(
            hop=k,
            sim_requests=row["requests"],
            sim_p_block=row["p_block"],
            sim_wait_when_blocked=row["wait_when_blocked"],
            sim_blocking_delay=row["blocking_delay"],
            model_p_block_longest_class=(
                round(model_p, 5) if model_p is not None else None
            ),
            model_blocking_delay=(
                round(model_p * pred.channel_wait, 4) if model_p is not None else None
            ),
        )
    return rec
