"""Large-network model study — the paper's motivating use-case.

Section 1 argues that analytical models matter because large
configurations are "not feasible to study using simulation on
conventional computers".  Thanks to the cycle-type collapse of the
path-set DAG the model runs in milliseconds for stars far beyond
simulation reach (S9 has 362,880 nodes); this study tabulates the model's
predictions across n.
"""

from __future__ import annotations

import math
import time

from repro.core.model import StarLatencyModel
from repro.experiments.records import ExperimentRecord

__all__ = ["scale_study"]


def scale_study(
    n_values=(4, 5, 6, 7, 8, 9),
    message_length: int = 32,
    extra_adaptive: int = 2,
) -> ExperimentRecord:
    """Model predictions for S_n with V = min_escape + ``extra_adaptive``.

    Reports network size, distance statistics, the predicted saturation
    rate and the model solve time — the headline being that solve time is
    independent of n! (it depends only on the number of cycle types).
    """
    rec = ExperimentRecord(
        name="scale_study",
        params={"message_length": message_length, "extra_adaptive": extra_adaptive},
    )
    for n in n_values:
        diameter = (3 * (n - 1)) // 2
        total_vcs = diameter // 2 + 1 + extra_adaptive
        t0 = time.perf_counter()
        model = StarLatencyModel(n, message_length, total_vcs)
        sat = model.saturation_rate()
        mid = model.evaluate(0.5 * sat if math.isfinite(sat) else 0.01)
        solve_ms = (time.perf_counter() - t0) * 1e3
        rec.add_row(
            n=n,
            nodes=math.factorial(n),
            degree=n - 1,
            diameter=diameter,
            total_vcs=total_vcs,
            mean_distance=round(model.mean_distance(), 4),
            zero_load_latency=round(model.zero_load_latency(), 2),
            half_load_latency=mid.latency,
            saturation_rate=sat,
            solve_ms=round(solve_ms, 2),
        )
    return rec
