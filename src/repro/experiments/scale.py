"""Large-network model study — the paper's motivating use-case.

Section 1 argues that analytical models matter because large
configurations are "not feasible to study using simulation on
conventional computers".  Thanks to the cycle-type collapse of the
path-set DAG the model runs in milliseconds for stars far beyond
simulation reach (S9 has 362,880 nodes); this study tabulates the model's
predictions across n.

Each n is one ``scale_point`` campaign work unit, so the study runs on
the same engine as every other sweep and parallelises across n with
``workers > 1``.
"""

from __future__ import annotations

from repro.api.scenario import run_units
from repro.campaign.grid import GridSpec
from repro.experiments.records import ExperimentRecord

__all__ = ["scale_study"]


def scale_study(
    n_values=(4, 5, 6, 7, 8, 9),
    message_length: int = 32,
    extra_adaptive: int = 2,
    workers: int = 1,
) -> ExperimentRecord:
    """Model predictions for S_n with V = min_escape + ``extra_adaptive``.

    Reports network size, distance statistics, the predicted saturation
    rate and the model solve time — the headline being that solve time is
    independent of n! (it depends only on the number of cycle types).
    """
    rec = ExperimentRecord(
        name="scale_study",
        params={"message_length": message_length, "extra_adaptive": extra_adaptive},
    )
    grid = GridSpec(
        kind="scale_point",
        axes=(("n", tuple(n_values)),),
        pinned=(
            ("message_length", message_length),
            ("extra_adaptive", extra_adaptive),
        ),
    )
    for row in run_units(grid.expand(), workers=workers).results:
        rec.add_row(**row)
    return rec
