"""Large-network model study — the paper's motivating use-case.

Section 1 argues that analytical models matter because large
configurations are "not feasible to study using simulation on
conventional computers".  Thanks to the cycle-type collapse of the
path-set DAG the model runs in milliseconds for stars far beyond
simulation reach (S9 has 362,880 nodes); this study tabulates the model's
predictions across n.

Each n is one ``scale_point`` campaign work unit, so the study runs on
the same engine as every other sweep, parallelises across n with
``workers > 1``, and projects onto the uniform
:class:`~repro.api.results.ResultRow` schema (rate is NaN — a scale
point has no single operating rate; the profile rides in ``meta``), so
``starnet scale --out`` emits a ResultSet like every other path.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.results import ResultSet
from repro.api.scenario import run_units
from repro.campaign.grid import GridSpec, WorkUnit
from repro.experiments.records import ExperimentRecord, study_record, study_resultset

__all__ = ["scale_units", "scale_study", "scale_study_with_rows", "scale_resultset"]


def scale_units(
    n_values: Sequence[int] = (4, 5, 6, 7, 8, 9),
    message_length: int = 32,
    extra_adaptive: int = 2,
) -> list[WorkUnit]:
    """The ``scale_point`` work units of one scale study."""
    grid = GridSpec(
        kind="scale_point",
        axes=(("n", tuple(n_values)),),
        pinned=(
            ("message_length", message_length),
            ("extra_adaptive", extra_adaptive),
        ),
    )
    return grid.expand()


def scale_study_with_rows(
    n_values=(4, 5, 6, 7, 8, 9),
    message_length: int = 32,
    extra_adaptive: int = 2,
    workers: int = 1,
    cache_dir=None,
) -> tuple[ExperimentRecord, ResultSet]:
    """One campaign run feeding both the record and the ResultSet view."""
    result = run_units(
        scale_units(n_values, message_length, extra_adaptive),
        workers=workers,
        cache_dir=cache_dir,
    )
    record = study_record(
        "scale_study",
        {"message_length": message_length, "extra_adaptive": extra_adaptive},
        result,
    )
    return record, study_resultset(result)


def scale_study(
    n_values=(4, 5, 6, 7, 8, 9),
    message_length: int = 32,
    extra_adaptive: int = 2,
    workers: int = 1,
) -> ExperimentRecord:
    """Model predictions for S_n with V = min_escape + ``extra_adaptive``.

    Reports network size, distance statistics, the predicted saturation
    rate and the model solve time — the headline being that solve time is
    independent of n! (it depends only on the number of cycle types).
    """
    return scale_study_with_rows(n_values, message_length, extra_adaptive, workers)[0]


def scale_resultset(
    n_values=(4, 5, 6, 7, 8, 9),
    message_length: int = 32,
    extra_adaptive: int = 2,
    workers: int = 1,
    cache_dir=None,
) -> ResultSet:
    """The scale study as uniform ResultRows (ROADMAP "ResultSet everywhere")."""
    return scale_study_with_rows(
        n_values, message_length, extra_adaptive, workers, cache_dir
    )[1]
