"""Experiment harness: regenerates every figure/table of the paper.

* :mod:`repro.experiments.figure1` — Figure 1(a)/(b)/(c): model vs
  simulation latency curves for S5 with V = 6/9/12 and M = 32/64;
* :mod:`repro.experiments.ablations` — blocking-variant, routing
  algorithm, VC-split and star-vs-hypercube studies;
* :mod:`repro.experiments.scale` — model-only large-n study (the paper's
  "large systems infeasible to simulate" motivation);
* :mod:`repro.experiments.tables` / :mod:`repro.experiments.records` —
  rendering and persistence.
"""

from repro.experiments.figure1 import (
    FIGURE1_PANELS,
    Figure1Panel,
    PanelSeries,
    reproduce_panel,
    sim_quality_config,
)
from repro.experiments.records import ExperimentRecord
from repro.experiments.tables import render_table

__all__ = [
    "FIGURE1_PANELS",
    "Figure1Panel",
    "PanelSeries",
    "reproduce_panel",
    "sim_quality_config",
    "ExperimentRecord",
    "render_table",
]
