"""Projection of layer-native results onto the uniform ResultRow schema.

:func:`row_from_unit` maps one campaign work unit and its result —
whether a rich object (``ModelResult``, ``SimulationResult``), a pooled
``sim_batch`` summary dict, or the JSON payload a resumed store handed
back — onto a :class:`~repro.api.results.ResultRow`.  The row's ``spec``
fingerprint is the unit's campaign content hash, so rows remain joinable
against any campaign JSONL store.
"""

from __future__ import annotations

import math
from dataclasses import fields
from typing import Any, Mapping

from repro.api.results import ResultRow
from repro.bounds.network import BoundSpec
from repro.campaign.grid import WorkUnit
from repro.core.spec import ModelSpec
from repro.simulation.config import SimulationConfig
from repro.simulation.spec import SimSpec
from repro.utils.exceptions import ConfigurationError

__all__ = ["row_from_unit"]

#: Kinds this converter understands, mapped to their provenance.
_KIND_PROVENANCE = {
    "model": "model",
    "vc_split_point": "model",
    "scale_point": "model",
    "sim": "sim",
    "sim_batch": "sim",
    "bound": "bound",
}


def _spec_defaults(cls, names: tuple[str, ...]) -> dict[str, Any]:
    return {f.name: f.default for f in fields(cls) if f.name in names}


#: Context defaults of model-kind params (ModelSpec's defaults-omitted
#: dict form) and sim-kind params (SimSpec + SimulationConfig), read off
#: the spec dataclasses so they can never drift out of sync.
_MODEL_DEFAULTS = _spec_defaults(
    ModelSpec, ("topology", "order", "message_length", "total_vcs")
)
_SIM_DEFAULTS = {
    **_spec_defaults(SimSpec, ("topology", "order", "algorithm")),
    **_spec_defaults(
        SimulationConfig, ("message_length", "total_vcs", "engine", "seed")
    ),
}


_BOUND_DEFAULTS = _spec_defaults(
    BoundSpec, ("order", "message_length", "total_vcs")
)


def _payload(result: Any) -> Mapping[str, Any]:
    """Dict view of a result (rich objects project through as_dict)."""
    if isinstance(result, Mapping):
        return result
    if hasattr(result, "as_dict"):
        return result.as_dict()
    raise ConfigurationError(
        f"cannot convert result of type {type(result).__name__} to a ResultRow"
    )


def _nan_if_none(value: Any) -> float:
    if value is None:
        return math.nan
    value = float(value)
    return value


def _workload_of(params: Mapping[str, Any]) -> str:
    workload = params.get("workload")
    if workload is None:
        # Model params omit the uniform workload; sim params may carry
        # it in the legacy ``traffic`` field instead.
        workload = params.get("traffic", "uniform")
    return workload


def _scale_point_row(
    unit: WorkUnit, data: dict, meta: Mapping[str, Any] | None
) -> ResultRow:
    """Project a scale-study row onto the schema via ``ResultRow.meta``.

    A scale point has no natural single operating rate (it reports a
    whole-network profile: saturation rate, half-load latency, solve
    time), so ``rate`` is NaN, ``latency`` is the half-load latency, and
    everything else — node counts, distance statistics, solve time —
    rides in ``meta`` (the ROADMAP's "ResultSet everywhere" projection).
    """
    params = unit.params
    order = int(params["n"])
    latency = _nan_if_none(data.pop("half_load_latency", None))
    extras = {
        k: v for k, v in data.items() if not isinstance(v, (list, tuple, dict))
    }
    extras["kind"] = "scale_point"
    if meta:
        extras.update(meta)
    return ResultRow(
        provenance="model",
        spec=unit.key(),
        topology="star",
        order=order,
        workload="uniform",
        message_length=int(params.get("message_length", 32)),
        total_vcs=int(data.get("total_vcs", extras.get("total_vcs", 0))),
        engine="model",
        rate=math.nan,
        latency=latency,
        latency_lo=math.nan,
        latency_hi=math.nan,
        saturated=not math.isfinite(latency),
        algorithm=None,
        replications=1,
        seed=None,
        meta=extras,
    )


def _bound_row(
    unit: WorkUnit, result: Any, data: dict, meta: Mapping[str, Any] | None
) -> ResultRow:
    """One network-calculus bound point as a ``bound``-provenance row.

    ``latency`` carries the headline mean-weighted delay bound; the
    worst-flow and backlog bounds travel in ``meta`` (``inf`` bounds
    serialise as JSONL nulls and parse back to NaN, exactly like
    saturated model rows).
    """
    params = unit.params
    rate = float(params["rate"])
    if hasattr(result, "delay_bound"):
        latency = float(result.delay_bound)
        data.pop("delay_bound", None)
    else:
        latency = _nan_if_none(data.pop("delay_bound", None))
        if latency != latency:  # a stored null is a diverged (infinite) bound
            latency = math.inf if data.get("saturated") else math.nan
    saturated = bool(data.pop("saturated", False))
    data.pop("generation_rate", None)
    extras = {
        k: v for k, v in data.items() if not isinstance(v, (list, tuple, dict))
    }
    if meta:
        extras.update(meta)
    return ResultRow(
        provenance="bound",
        spec=unit.key(),
        topology="star",
        order=int(params.get("order", _BOUND_DEFAULTS["order"])),
        workload=_workload_of(params),
        message_length=int(
            params.get("message_length", _BOUND_DEFAULTS["message_length"])
        ),
        total_vcs=int(params.get("total_vcs", _BOUND_DEFAULTS["total_vcs"])),
        engine="bound",
        rate=rate,
        latency=latency,
        latency_lo=math.nan,
        latency_hi=math.nan,
        saturated=saturated,
        algorithm=None,
        replications=1,
        seed=None,
        meta=extras,
    )


def row_from_unit(unit: WorkUnit, result: Any, meta: Mapping[str, Any] | None = None) -> ResultRow:
    """One ResultRow for a (work unit, result) pair.

    Accepts the rich result objects the campaign kinds return as well as
    their JSON payload forms (what a resumed store yields), so rows can
    be rebuilt from any campaign output.
    """
    provenance = _KIND_PROVENANCE.get(unit.kind)
    if provenance is None:
        raise ConfigurationError(
            f"no ResultRow conversion for work-unit kind {unit.kind!r} "
            f"(expected one of {sorted(_KIND_PROVENANCE)})"
        )
    params = unit.params
    data = dict(_payload(result))
    if unit.kind == "scale_point":
        return _scale_point_row(unit, data, meta)
    if unit.kind == "bound":
        return _bound_row(unit, result, data, meta)
    # Rich result objects carry full-precision values; their as_dict
    # views round for table rendering.  Prefer the attributes.
    if provenance == "model":
        defaults = _MODEL_DEFAULTS
        rate = float(params["rate"])
        if hasattr(result, "latency"):
            latency = float(result.latency)
            data.pop("latency", None)
        else:
            latency = _nan_if_none(data.pop("latency", None))
        lo = hi = math.nan
        saturated = bool(data.pop("saturated", False))
        engine = "model"
        algorithm = None
        replications = 1
        seed = None
        data.pop("generation_rate", None)
    else:
        defaults = _SIM_DEFAULTS
        rate = float(params.get("generation_rate", 0.001))
        if hasattr(result, "mean_latency"):
            latency = float(result.mean_latency)
            ci = float(result.latency_ci)
            data.pop("mean_latency", None)
            data.pop("latency_ci", None)
        else:
            latency = _nan_if_none(data.pop("mean_latency", None))
            ci = _nan_if_none(data.pop("latency_ci", None))
        lo = latency - ci
        hi = latency + ci
        if unit.kind == "sim_batch":
            saturated = bool(data.pop("any_saturated", False))
            replications = int(data.pop("replications", params.get("replications", 8)))
        else:
            saturated = bool(data.pop("saturated", False))
            replications = 1
        engine = params.get("engine", defaults["engine"])
        algorithm = params.get("algorithm", defaults["algorithm"])
        seed = int(params.get("seed", defaults["seed"]))
    # Hop-blocking tables and other non-scalar extras stay out of the
    # row meta — rows are flat, one-line JSONL records.
    extras = {k: v for k, v in data.items() if not isinstance(v, (list, tuple, dict))}
    if meta:
        extras.update(meta)
    return ResultRow(
        provenance=provenance,
        spec=unit.key(),
        topology=params.get("topology", defaults["topology"]),
        order=int(params.get("order", defaults["order"])),
        workload=_workload_of(params),
        message_length=int(params.get("message_length", defaults["message_length"])),
        total_vcs=int(params.get("total_vcs", defaults["total_vcs"])),
        engine=engine,
        rate=rate,
        latency=latency,
        latency_lo=lo,
        latency_hi=hi,
        saturated=saturated,
        algorithm=algorithm,
        replications=replications,
        seed=seed,
        meta=extras,
    )
