"""Uniform result schema shared by every Scenario dispatch path.

Before this module the repo's entry points returned an incompatible zoo:
``ModelResult`` (analytical points), ``SimulationResult`` (one run),
pooled ``sim_batch`` dicts and ad-hoc study rows.  A
:class:`ResultRow` is the common denominator all of them project onto —
one operating point with a spec fingerprint, the workload, the offered
rate, a latency with confidence bounds, a saturation flag and a
``provenance`` tag (``model`` | ``sim`` | ``bound``) — and a
:class:`ResultSet` is a schema-versioned list of rows with
JSONL/CSV round-trips.

Schema version policy (see ``docs/api.md``): adding optional fields or
new ``meta`` keys keeps the version; renaming, removing or changing the
meaning of a field bumps :data:`SCHEMA_VERSION`.  ``from_jsonl`` accepts
documents at or below the current version and rejects newer ones.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from repro.utils.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.validation.compare import CurveComparison

__all__ = ["SCHEMA_VERSION", "PROVENANCES", "ResultRow", "ResultSet"]

#: Version of the ResultRow/ResultSet wire schema.
SCHEMA_VERSION = 1

#: Legal values of :attr:`ResultRow.provenance`.  ``bound`` rows come
#: from the network-calculus engine (:mod:`repro.bounds` — Farhi &
#: Gaujal 2010 / Mifdaoui & Ayed 2016 style worst-case envelopes);
#: ``surrogate`` rows are interpolated answers the capacity service
#: (:mod:`repro.service`) fits over cached grids, carrying an
#: ``error_budget`` in ``meta``.  Adding an enum value is additive under
#: the schema version policy (older documents never contain it).
PROVENANCES = ("model", "sim", "bound", "surrogate")

#: Marker line identifying a ResultSet JSONL document.
_HEADER_TYPE = "repro.resultset"

#: Row fields that hold floats which may be non-finite (serialised null).
_FLOAT_FIELDS = ("rate", "latency", "latency_lo", "latency_hi")


def _null_safe(value: Any) -> Any:
    """JSON-safe view: non-finite floats become null, containers recurse."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, Mapping):
        return {str(k): _null_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_null_safe(v) for v in value]
    return value


def _float_or_nan(value: Any) -> float:
    return math.nan if value is None else float(value)


@dataclass(frozen=True)
class ResultRow:
    """One operating point, whatever layer produced it.

    Attributes
    ----------
    provenance:
        ``model`` (analytical pipeline), ``sim`` (flit-level simulator)
        or ``bound`` (network-calculus worst-case envelope,
        :mod:`repro.bounds`).
    spec:
        Content-hash fingerprint of the producing work unit — the same
        sha256 the campaign store keys on, so a row can be traced back
        to (and deduplicated against) any campaign JSONL store.
    topology / order / algorithm / workload / message_length / total_vcs:
        The scenario coordinates of the point.  ``algorithm`` is None
        for model and bound rows (both abstract over adaptive routing).
    engine:
        ``model`` for analytical rows, ``bound`` for bound rows, else
        the simulation backend.
    rate:
        Offered load lambda_g (messages/cycle/node).  NaN for rows with
        no single operating rate (``scale_point`` projections).
    latency / latency_lo / latency_hi:
        Mean message latency and its 95% confidence bounds.  Model rows
        carry NaN bounds (the model is deterministic); simulation rows
        without a valid CI carry NaN bounds too.  Bound rows carry the
        mean-weighted worst-case delay bound (``inf`` when the bound
        engine diverged; serialised as null).
    saturated:
        True when the producing layer declared the point saturated.
    replications / seed:
        Simulation-side provenance (1 / None for model rows).
    meta:
        Everything else the producing layer reported (network latency,
        multiplexing, message counts, ...), JSON-safe.
    """

    provenance: str
    spec: str
    topology: str
    order: int
    workload: str
    message_length: int
    total_vcs: int
    engine: str
    rate: float
    latency: float
    latency_lo: float
    latency_hi: float
    saturated: bool
    algorithm: str | None = None
    replications: int = 1
    seed: int | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.provenance not in PROVENANCES:
            raise ConfigurationError(
                f"provenance must be one of {PROVENANCES}, got {self.provenance!r}"
            )

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the latency CI (NaN when no bounds)."""
        if math.isnan(self.latency_lo) or math.isnan(self.latency_hi):
            return math.nan
        return 0.5 * (self.latency_hi - self.latency_lo)

    def to_dict(self) -> dict:
        """JSON-safe flat dict (non-finite floats become null)."""
        out = {}
        for f in fields(self):
            out[f.name] = _null_safe(getattr(self, f.name))
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultRow":
        """Rebuild from :meth:`to_dict` output, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown ResultRow fields: {sorted(unknown)}")
        kwargs = dict(data)
        for name in _FLOAT_FIELDS:
            if name in kwargs:
                kwargs[name] = _float_or_nan(kwargs[name])
        return cls(**kwargs)


class ResultSet:
    """An ordered, schema-versioned collection of :class:`ResultRow`.

    Supports concatenation (``a + b``), filtering (:meth:`where`), and
    JSONL/CSV export.  The JSONL form round-trips exactly, with one
    NaN caveat: the typed float fields (``rate``/``latency``/CI bounds)
    serialise non-finite values as null and parse them back to NaN,
    while ``meta`` is plain JSON — a non-finite float placed there
    serialises as null and *stays* None on load.
    """

    def __init__(self, rows: Iterable[ResultRow] = (), schema_version: int = SCHEMA_VERSION):
        self.rows: list[ResultRow] = list(rows)
        self.schema_version = schema_version

    # -- container protocol ---------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self.rows)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self.rows[index], self.schema_version)
        return self.rows[index]

    def __add__(self, other: "ResultSet") -> "ResultSet":
        if not isinstance(other, ResultSet):
            return NotImplemented
        return ResultSet(self.rows + other.rows, self.schema_version)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ResultSet) and self.rows == other.rows

    def __repr__(self) -> str:
        by_prov: dict[str, int] = {}
        for row in self.rows:
            by_prov[row.provenance] = by_prov.get(row.provenance, 0) + 1
        parts = ", ".join(f"{k}={v}" for k, v in sorted(by_prov.items()))
        return f"ResultSet({len(self.rows)} rows{': ' + parts if parts else ''})"

    # -- selection ------------------------------------------------------

    def where(self, predicate: Callable[[ResultRow], bool] | None = None, **equals) -> "ResultSet":
        """Rows matching a predicate and/or field equality constraints.

        ``rs.where(provenance="model", workload="uniform")`` keeps rows
        whose named fields equal the given values; an optional callable
        adds arbitrary conditions.
        """
        known = {f.name for f in fields(ResultRow)}
        unknown = set(equals) - known
        if unknown:
            raise ConfigurationError(f"unknown ResultRow fields: {sorted(unknown)}")

        def _match(row: ResultRow) -> bool:
            for name, want in equals.items():
                if getattr(row, name) != want:
                    return False
            return predicate(row) if predicate is not None else True

        return ResultSet([r for r in self.rows if _match(r)], self.schema_version)

    def latencies(self) -> list[float]:
        """The latency column."""
        return [r.latency for r in self.rows]

    # -- model-vs-sim pairing -------------------------------------------

    def comparisons(self) -> "dict[str, CurveComparison]":
        """Per-workload model-vs-sim accuracy over paired rows.

        Pairs every ``model`` row with *each* ``sim`` row sharing the
        same (topology, order, workload, message_length, total_vcs,
        rate) coordinates — several sim engines or replication batches
        at one operating point each contribute their own comparison
        point — and aggregates the relative errors per workload, the
        ResultSet counterpart of
        :func:`repro.validation.compare.compare_curves`.  Workloads with
        no complete pair are omitted.
        """
        # Imported lazily: the validation package's __init__ pulls in
        # validation.workloads, which itself builds on this module.
        from repro.validation.compare import OperatingPoint, compare_curves

        def coords(row: ResultRow) -> tuple:
            return (row.topology, row.order, row.workload,
                    row.message_length, row.total_vcs, row.rate)

        sims: dict[tuple, list[ResultRow]] = {}
        for row in self.rows:
            if row.provenance == "sim":
                sims.setdefault(coords(row), []).append(row)
        by_workload: dict[str, list[OperatingPoint]] = {}
        for row in self.rows:
            if row.provenance != "model":
                continue
            for sim in sims.get(coords(row), ()):
                by_workload.setdefault(row.workload, []).append(
                    OperatingPoint(
                        generation_rate=row.rate,
                        model_latency=row.latency,
                        sim_latency=sim.latency,
                        model_saturated=row.saturated,
                        sim_saturated=sim.saturated,
                    )
                )
        return {w: compare_curves(points) for w, points in by_workload.items()}

    # -- serialisation --------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialise: one header line, then one JSON object per row."""
        header = {"type": _HEADER_TYPE, "schema_version": self.schema_version}
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        for row in self.rows:
            lines.append(
                json.dumps(row.to_dict(), sort_keys=True, separators=(",", ":"),
                           allow_nan=False)
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "ResultSet":
        """Parse a document produced by :meth:`to_jsonl`."""
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ConfigurationError("empty ResultSet document")
        header = json.loads(lines[0])
        if not isinstance(header, Mapping) or header.get("type") != _HEADER_TYPE:
            raise ConfigurationError(
                f"not a ResultSet document (missing {_HEADER_TYPE!r} header)"
            )
        version = header.get("schema_version")
        if not isinstance(version, int) or version < 1:
            raise ConfigurationError(f"bad ResultSet schema_version: {version!r}")
        if version > SCHEMA_VERSION:
            raise ConfigurationError(
                f"ResultSet schema_version {version} is newer than this "
                f"library supports ({SCHEMA_VERSION})"
            )
        rows = [ResultRow.from_dict(json.loads(ln)) for ln in lines[1:]]
        return cls(rows, schema_version=version)

    def save(self, path: str | Path) -> Path:
        """Write the JSONL form to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ResultSet":
        """Read a ResultSet previously written by :meth:`save`."""
        return cls.from_jsonl(Path(path).read_text())

    def to_csv(self) -> str:
        """Flat CSV export (``meta`` as one JSON-encoded column)."""
        names = [f.name for f in fields(ResultRow)]
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(names)
        for row in self.rows:
            record = row.to_dict()
            writer.writerow(
                [
                    json.dumps(record[n], sort_keys=True, separators=(",", ":"))
                    if n == "meta"
                    else ("" if record[n] is None else record[n])
                    for n in names
                ]
            )
        return buf.getvalue()

    def with_meta(self, **extra) -> "ResultSet":
        """Copy with extra ``meta`` keys merged into every row."""
        return ResultSet(
            [replace(r, meta={**r.meta, **extra}) for r in self.rows],
            self.schema_version,
        )
