"""The Scenario facade: one declarative description of a network under load.

A :class:`Scenario` names everything the model, the simulator, the
campaign engine and the validation layer need — topology, order, routing
algorithm, message length, VC budget and split, workload string, solver
and engine knobs — canonicalised and validated once, in one place.  From
it every execution path dispatches onto the existing layers:

* :meth:`Scenario.model` — the analytical pipeline (``ModelSpec``);
* :meth:`Scenario.simulate` — the flit-level simulator (``SimSpec``),
  engine- and replications-aware;
* :meth:`Scenario.bound` — the network-calculus bound engine
  (``BoundSpec``, see :mod:`repro.bounds`);
* :meth:`Scenario.sweep` — a campaign over (rate x workload x engine x
  anything), parallel / resumable / cache-backed;
* :meth:`Scenario.validate` — per-workload model-vs-sim accuracy.

Every path returns a schema-versioned
:class:`~repro.api.results.ResultSet` of uniform rows, so analytical,
simulated and bound rows share one wire format.

Key stability: the facade builds campaign work units through the same
``ModelSpec.to_params()`` / ``SimSpec.to_params()`` defaults-omitted
dicts as the pre-facade experiment drivers, so content-hash keys for
default scenarios are byte-identical to historical campaign stores
(pinned in ``tests/api/test_key_stability.py``).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping, Sequence

from repro.api.convert import row_from_unit
from repro.api.quality import QUALITY_WINDOWS, quality_for_windows, quality_windows
from repro.api.results import ResultSet
from repro.campaign.grid import WorkUnit, canonical_key, parse_axis_values
from repro.campaign.runner import CampaignResult, pool_choice, run_campaign
from repro.core.spec import ModelSpec
from repro.core.solver import SolverSettings
from repro.simulation.config import SimulationConfig
from repro.simulation.spec import SimSpec
from repro.utils.exceptions import ConfigurationError
from repro.workloads.spec import WorkloadSpec

__all__ = ["Scenario", "run_units"]

_DEFAULT_SOLVER = SolverSettings()

#: The pseudo-engine selecting the analytical model on an engine axis.
_MODEL_ENGINE = "model"

#: The pseudo-engine selecting the network-calculus bound engine.
_BOUND_ENGINE = "bound"

#: Simulation backends a Scenario may name.
_SIM_ENGINES = ("object", "array")


def run_units(
    units: Sequence[WorkUnit],
    *,
    workers: int = 1,
    executor: str = "processes",
    store=None,
    resume: bool = False,
    cache_dir=None,
    progress=None,
    events=None,
    trace=None,
) -> CampaignResult:
    """Run campaign work units — the facade's one execution funnel.

    A thin, stable alias of :func:`repro.campaign.runner.run_campaign`;
    the CLI and the Scenario methods all execute through here.
    ``executor="threads"`` swaps the ``workers > 1`` process pool for an
    in-process thread pool (zero pickling; the array engine's compiled
    kernel releases the GIL, so its units genuinely overlap).
    ``events`` (a JSONL path or :class:`repro.obs.EventSink`) streams
    per-unit lifecycle telemetry; ``trace`` (a
    :class:`repro.obs.TraceContext`) links the run's spans into a
    caller's trace — see ``docs/observability.md``.
    """
    return run_campaign(
        units,
        workers=workers,
        executor=executor,
        store=store,
        resume=resume,
        cache_dir=cache_dir,
        progress=progress,
        events=events,
        trace=trace,
    )


@dataclass(frozen=True)
class Scenario:
    """One network-under-workload, as plain data.

    Attributes
    ----------
    topology / order:
        ``"star"`` (order = n) or ``"hypercube"`` (order = k).
    algorithm:
        Routing-registry name driving the simulator (the analytical
        model abstracts over adaptive routing and ignores it).
    message_length / total_vcs:
        The paper's M and V.
    num_adaptive / num_escape:
        Optional explicit VC split (both or neither); affects the model
        only — the simulator derives its split from the algorithm.
    workload:
        ``spatial[+temporal]`` workload string, canonicalised once here
        (``"uniform"`` is the paper's uniform/Poisson default).
    variant:
        Model blocking arithmetic (``"exact"`` or ``"paper"``).
    damping / tolerance / max_iterations / divergence_threshold:
        Fixed-point solver knobs (model side).
    quality:
        Simulation window preset (``smoke`` / ``quick`` / ``full``);
        the explicit ``*_cycles`` fields override individual windows.
    engine:
        Simulation backend (``"object"`` or ``"array"``).
    seed:
        Master seed of simulation runs (replication i uses seed + i).

    Exotic simulator knobs (buffer depth, injection slots, watchdog
    grace, ...) intentionally stay off the scenario — drop down to
    :class:`~repro.simulation.spec.SimSpec` for those.
    """

    topology: str = "star"
    order: int = 5
    algorithm: str = "enhanced_nbc"
    message_length: int = 32
    total_vcs: int = 6
    num_adaptive: int | None = None
    num_escape: int | None = None
    workload: str = "uniform"
    variant: str = "exact"
    damping: float = _DEFAULT_SOLVER.damping
    tolerance: float = _DEFAULT_SOLVER.tolerance
    max_iterations: int = _DEFAULT_SOLVER.max_iterations
    divergence_threshold: float = _DEFAULT_SOLVER.divergence_threshold
    quality: str = "quick"
    warmup_cycles: int | None = None
    measure_cycles: int | None = None
    drain_cycles: int | None = None
    engine: str = "object"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.topology not in ("star", "hypercube"):
            raise ConfigurationError(
                f"topology must be 'star' or 'hypercube', got {self.topology!r}"
            )
        if (self.num_adaptive is None) != (self.num_escape is None):
            raise ConfigurationError(
                "num_adaptive and num_escape must be given together or not at all"
            )
        if self.engine not in _SIM_ENGINES:
            raise ConfigurationError(
                f"engine must be one of {_SIM_ENGINES}, got {self.engine!r}"
            )
        if self.quality not in QUALITY_WINDOWS:
            raise ConfigurationError(
                f"unknown quality {self.quality!r}; expected one of "
                f"{sorted(QUALITY_WINDOWS)}"
            )
        # The one canonicalisation path: every spelling of a workload
        # normalises here, before it reaches ModelSpec, SimSpec or a
        # campaign key.
        object.__setattr__(self, "workload", WorkloadSpec.coerce(self.workload).canonical)

    # -- plain-dict round trip ------------------------------------------

    def to_params(self) -> dict[str, Any]:
        """Compact plain-dict form (defaulted fields omitted)."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "Scenario":
        """Rebuild from a plain dict, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = set(params) - known
        if unknown:
            raise ConfigurationError(f"unknown Scenario parameters: {sorted(unknown)}")
        return cls(**dict(params))

    def fingerprint(self) -> str:
        """Deterministic content hash of this scenario's canonical form."""
        return canonical_key("scenario", self.to_params())

    def replace(self, **changes) -> "Scenario":
        """Copy with fields changed (re-canonicalised and re-validated)."""
        return replace(self, **changes)

    # -- spec construction (the rewire seam) ----------------------------

    def model_spec(self) -> ModelSpec:
        """The analytical-model spec this scenario describes."""
        return ModelSpec(
            topology=self.topology,
            order=self.order,
            message_length=self.message_length,
            total_vcs=self.total_vcs,
            variant=self.variant,
            num_adaptive=self.num_adaptive,
            num_escape=self.num_escape,
            workload=None if self.workload == "uniform" else self.workload,
            damping=self.damping,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            divergence_threshold=self.divergence_threshold,
        )

    @classmethod
    def from_model_spec(cls, spec: ModelSpec, **extra) -> "Scenario":
        """Scenario matching a ModelSpec (sim-side fields from ``extra``)."""
        return cls(
            topology=spec.topology,
            order=spec.order,
            message_length=spec.message_length,
            total_vcs=spec.total_vcs,
            variant=spec.variant,
            num_adaptive=spec.num_adaptive,
            num_escape=spec.num_escape,
            workload=spec.workload if spec.workload is not None else "uniform",
            damping=spec.damping,
            tolerance=spec.tolerance,
            max_iterations=spec.max_iterations,
            divergence_threshold=spec.divergence_threshold,
            **extra,
        )

    def sim_config(self, rate: float, *, seed: int | None = None) -> SimulationConfig:
        """The simulation configuration at one offered load."""
        windows = quality_windows(self.quality)
        for name in ("warmup_cycles", "measure_cycles", "drain_cycles"):
            value = getattr(self, name)
            if value is not None:
                windows[name] = value
        return SimulationConfig(
            message_length=self.message_length,
            generation_rate=rate,
            total_vcs=self.total_vcs,
            seed=self.seed if seed is None else seed,
            workload=None if self.workload == "uniform" else self.workload,
            engine=self.engine,
            **windows,
        )

    def sim_spec(self, rate: float, *, seed: int | None = None) -> SimSpec:
        """The simulation spec at one offered load."""
        return SimSpec(
            topology=self.topology,
            order=self.order,
            algorithm=self.algorithm,
            config=self.sim_config(rate, seed=seed),
        )

    @classmethod
    def from_sim_spec(cls, spec: SimSpec, **extra) -> "Scenario":
        """Scenario matching a SimSpec.

        Raises when the spec uses simulator knobs the scenario does not
        model (buffer depth, injection slots, ...) — those configurations
        stay on SimSpec.
        """
        config = spec.config
        representable = {
            "message_length", "generation_rate", "total_vcs", "seed",
            "workload", "traffic", "engine",
            "warmup_cycles", "measure_cycles", "drain_cycles",
        }
        exotic = [
            f.name
            for f in fields(SimulationConfig)
            if f.name not in representable and getattr(config, f.name) != f.default
        ]
        if exotic:
            raise ConfigurationError(
                "SimSpec uses simulator knobs a Scenario does not carry: "
                f"{sorted(exotic)}"
            )
        quality = quality_for_windows(
            config.warmup_cycles, config.measure_cycles, config.drain_cycles
        )
        windows: dict[str, int | None] = dict(
            warmup_cycles=None, measure_cycles=None, drain_cycles=None
        )
        if quality is None:
            quality = "quick"
            windows = dict(
                warmup_cycles=config.warmup_cycles,
                measure_cycles=config.measure_cycles,
                drain_cycles=config.drain_cycles,
            )
        return cls(
            topology=spec.topology,
            order=spec.order,
            algorithm=spec.algorithm,
            message_length=config.message_length,
            total_vcs=config.total_vcs,
            workload=config.workload_spec().canonical,
            quality=quality,
            engine=config.engine,
            seed=config.seed,
            **windows,
            **extra,
        )

    def bound_spec(self, *, buffer_depth: int | None = None):
        """The network-calculus bound spec this scenario describes.

        Star-only (the bound engine rides the explicit flow propagation);
        ``buffer_depth`` defaults to the simulator's per-VC buffer depth
        so model, simulator and bounds describe one switch.
        """
        from repro.bounds.network import BoundSpec
        from repro.simulation.config import SimulationConfig as _SimConfig

        if self.topology != "star":
            raise ConfigurationError(
                "network-calculus bounds are star-only; "
                f"got topology {self.topology!r}"
            )
        if buffer_depth is None:
            buffer_depth = _SimConfig.__dataclass_fields__["buffer_depth"].default
        return BoundSpec(
            order=self.order,
            message_length=self.message_length,
            total_vcs=self.total_vcs,
            workload=None if self.workload == "uniform" else self.workload,
            buffer_depth=buffer_depth,
        )

    # -- work-unit construction -----------------------------------------

    def model_unit(self, rate: float, *, kind: str = "model") -> WorkUnit:
        """One analytical work unit at ``rate`` (kinds: model family)."""
        return WorkUnit(kind=kind, params={**self.model_spec().to_params(), "rate": rate})

    def bound_unit(self, rate: float) -> WorkUnit:
        """One network-calculus bound work unit at ``rate``."""
        return WorkUnit(
            kind="bound", params={**self.bound_spec().to_params(), "rate": rate}
        )

    def sim_unit(self, rate: float, *, replications: int = 1) -> WorkUnit:
        """One simulation work unit at ``rate``.

        ``replications > 1`` produces a pooled ``sim_batch`` unit (the
        engine is pinned explicitly so the batch runs on this scenario's
        backend rather than the kind's array default).
        """
        params = self.sim_spec(rate).to_params()
        if replications > 1:
            params["replications"] = replications
            params["engine"] = self.engine
            return WorkUnit(kind="sim_batch", params=params)
        return WorkUnit(kind="sim", params=params)

    # -- materialisation ------------------------------------------------

    def build_model(self, stats=None):
        """The live analytical model (see :meth:`ModelSpec.build`)."""
        return self.model_spec().build(stats=stats)

    def saturation_rate(self) -> float:
        """The model's predicted saturation rate for this scenario."""
        return self.build_model().saturation_rate()

    def rate_ladder(self, fractions: Sequence[float] = (0.2, 0.4, 0.6)) -> tuple[float, ...]:
        """Load points as fractions of the model's saturation rate."""
        sat = self.saturation_rate()
        if not math.isfinite(sat):
            raise ConfigurationError(
                "model does not saturate for this scenario; give explicit rates"
            )
        return tuple(round(f * sat, 6) for f in fractions)

    # -- execution paths ------------------------------------------------

    def model(
        self,
        rates: float | Sequence[float],
        *,
        workers: int = 1,
        cache_dir=None,
    ) -> ResultSet:
        """Analytical latency at the given rate(s) as a ResultSet."""
        rates = _rate_tuple(rates)
        units = [self.model_unit(r) for r in rates]
        result = run_units(units, workers=workers, cache_dir=cache_dir)
        return ResultSet(
            row_from_unit(u, r) for u, r in zip(result.units, result.results)
        )

    def bound(
        self,
        rates: float | Sequence[float],
        *,
        workers: int = 1,
        cache_dir=None,
    ) -> ResultSet:
        """Network-calculus delay/backlog bounds as ``bound`` rows.

        One row per rate with provenance ``bound``: ``latency`` is the
        mean-weighted worst-case delay bound, ``meta`` carries the
        worst-flow and backlog bounds.  A diverged burstiness fixed
        point (load beyond the bound engine's critical utilisation)
        yields an infinite bound — ``saturated=True``, serialised as
        JSONL null.  See ``docs/bounds.md``.
        """
        rates = _rate_tuple(rates)
        units = [self.bound_unit(r) for r in rates]
        result = run_units(units, workers=workers, cache_dir=cache_dir)
        return ResultSet(
            row_from_unit(u, r) for u, r in zip(result.units, result.results)
        )

    def bound_divergence_rate(self) -> float:
        """Smallest rate at which the bound engine's fixed point diverges."""
        from repro.bounds.analysis import divergence_rate

        return divergence_rate(self.bound_spec())

    def simulate(
        self,
        rates: float | Sequence[float],
        *,
        replications: int = 1,
        workers: int = 1,
        jobs: int | None = None,
        cache_dir=None,
    ) -> ResultSet:
        """Simulated latency at the given rate(s) as a ResultSet.

        With ``replications > 1`` every rate becomes one pooled
        ``sim_batch`` row (seeds ``seed .. seed + R - 1``; on the array
        engine the whole batch advances in one vectorized process).
        ``jobs > 1`` runs the rate points concurrently on in-process
        threads instead of the ``workers`` process pool.
        """
        rates = _rate_tuple(rates)
        units = [self.sim_unit(r, replications=replications) for r in rates]
        width, executor = pool_choice(workers, jobs)
        result = run_units(
            units, workers=width, executor=executor, cache_dir=cache_dir
        )
        return ResultSet(
            row_from_unit(u, r) for u, r in zip(result.units, result.results)
        )

    def sweep(
        self,
        axes: Mapping[str, Any],
        *,
        replications: int = 1,
        workers: int = 1,
        jobs: int | None = None,
        store=None,
        resume: bool = False,
        cache_dir=None,
        progress=None,
    ) -> ResultSet:
        """Campaign over scenario axes; one ResultSet, mixed provenance.

        ``axes`` maps axis names to value collections (sequences, comma
        strings or ``lo:hi:count`` linspace declarations — the campaign
        grid grammar).  Axis names are Scenario fields plus two specials:

        * ``rate`` — the offered load (required);
        * ``engine`` — may mix the pseudo-engines ``"model"``
          (analytical rows) and ``"bound"`` (network-calculus bound
          rows) with simulation backends (``"object"`` / ``"array"``),
          so one sweep returns all three provenances side by side.
          Omitted, the sweep is analytical-only.

        The cartesian product expands with the last axis varying
        fastest (campaign-grid convention); every point becomes one work
        unit keyed by the same content hashes as historical campaign
        stores, so ``store=``/``resume=`` interoperate with existing
        JSONL stores.

        ``jobs > 1`` parallelises in-process on threads: the fused
        in-process path runs its batched groups concurrently, and the
        store/resume/cache path swaps the process pool for the thread
        executor (``jobs`` and ``workers`` are mutually exclusive).
        ``jobs`` never enters unit keys — it is a resource knob, and
        results are identical for every value.
        """
        if "rate" not in axes:
            raise ConfigurationError("sweep needs a 'rate' axis")
        scenario_fields = {f.name for f in fields(Scenario)}
        names = list(axes)
        for name in names:
            if name not in scenario_fields and name not in ("rate", "engine"):
                raise ConfigurationError(
                    f"unknown sweep axis {name!r}; expected a Scenario field, "
                    "'rate' or 'engine'"
                )
        values = [parse_axis_values(axes[name]) for name in names]
        for name, vals in zip(names, values):
            if name == "engine":
                bad = [
                    v
                    for v in vals
                    if v not in (_MODEL_ENGINE, _BOUND_ENGINE, *_SIM_ENGINES)
                ]
                if bad:
                    raise ConfigurationError(
                        f"unknown engine axis values {bad}; expected 'model', "
                        "'bound', 'object' or 'array'"
                    )
        units: list[WorkUnit] = []
        for combo in itertools.product(*values):
            point = dict(zip(names, combo))
            engine = point.pop("engine", _MODEL_ENGINE)
            rate = float(point.pop("rate"))
            scenario = self.replace(**point) if point else self
            if engine == _MODEL_ENGINE:
                units.append(scenario.model_unit(rate))
            elif engine == _BOUND_ENGINE:
                units.append(scenario.bound_unit(rate))
            else:
                if engine != scenario.engine:
                    scenario = scenario.replace(engine=engine)
                units.append(scenario.sim_unit(rate, replications=replications))
        if store is None and not resume and workers == 1 and cache_dir is None:
            # In-process sweep: fuse compatible array-engine sim units so
            # an entire rate-ladder × seed grid advances as one batched
            # SimState (results are bit-identical to per-unit dispatch —
            # replications never couple).  Stores, resume, caching and
            # process pools keep the per-unit campaign path.
            from repro.campaign.kinds import run_units_fused

            fused = run_units_fused(units, progress=progress, jobs=jobs)
            return ResultSet(
                row_from_unit(u, r) for u, r in zip(units, fused)
            )
        width, executor = pool_choice(workers, jobs)
        result = run_units(
            units,
            workers=width,
            executor=executor,
            store=store,
            resume=resume,
            cache_dir=cache_dir,
            progress=progress,
        )
        return ResultSet(
            row_from_unit(u, r) for u, r in zip(result.units, result.results)
        )

    def validate(
        self,
        workloads: Sequence[str] | None = None,
        *,
        load_fractions: Sequence[float] = (0.2, 0.4, 0.6),
        replications: int = 1,
        hops: bool = False,
        workers: int = 1,
        jobs: int | None = None,
        tolerance: float | None = None,
        cache_dir=None,
    ) -> ResultSet:
        """Model-vs-sim accuracy rows for this scenario's workload(s).

        Delegates to :func:`repro.validation.workloads.validate_workloads`
        (the campaign-backed validation driver) and flattens every
        workload's paired model/sim points into one ResultSet; use
        :meth:`ResultSet.comparisons` for the per-workload error
        aggregates.  ``workloads=None`` validates this scenario's own
        workload.
        """
        from repro.validation.workloads import validate_workloads

        records = validate_workloads(
            tuple(workloads) if workloads is not None else (self.workload,),
            scenario=self,
            load_fractions=tuple(load_fractions),
            replications=replications,
            hops=hops,
            workers=workers,
            jobs=jobs,
            tolerance=tolerance,
            cache_dir=cache_dir,
        )
        out = ResultSet()
        for record in records:
            if record.rows is not None:
                out = out + record.rows
        return out


def _rate_tuple(rates: float | Sequence[float]) -> tuple[float, ...]:
    if isinstance(rates, (int, float)):
        return (float(rates),)
    rates = tuple(float(r) for r in rates)
    if not rates:
        raise ConfigurationError("need at least one rate")
    return rates
