"""Simulation window presets shared by every facade entry point.

Historically these lived in :mod:`repro.experiments.figure1`; they moved
here so the :class:`~repro.api.scenario.Scenario` facade, the validation
layer and the CLI all draw the same windows from one table (figure1
re-exports :func:`sim_quality_config` for backwards compatibility).
"""

from __future__ import annotations

from repro.simulation.config import SimulationConfig
from repro.utils.exceptions import ConfigurationError

__all__ = ["QUALITY_WINDOWS", "quality_windows", "quality_for_windows", "sim_quality_config"]

#: Preset name -> (warmup, measure, drain) cycle windows.  ``quick`` is
#: the CI/benchmark default, ``full`` the publication-quality window.
QUALITY_WINDOWS: dict[str, dict[str, int]] = {
    "smoke": dict(warmup_cycles=1_000, measure_cycles=3_000, drain_cycles=4_000),
    "quick": dict(warmup_cycles=2_500, measure_cycles=8_000, drain_cycles=10_000),
    "full": dict(warmup_cycles=6_000, measure_cycles=24_000, drain_cycles=30_000),
}


def quality_windows(quality: str) -> dict[str, int]:
    """The cycle windows of a named preset (copy, safe to mutate)."""
    try:
        return dict(QUALITY_WINDOWS[quality])
    except KeyError:
        raise ConfigurationError(
            f"unknown quality {quality!r}; expected one of {sorted(QUALITY_WINDOWS)}"
        ) from None


def quality_for_windows(
    warmup_cycles: int, measure_cycles: int, drain_cycles: int
) -> str | None:
    """Preset name matching the given windows exactly, or None."""
    windows = dict(
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        drain_cycles=drain_cycles,
    )
    for name, preset in QUALITY_WINDOWS.items():
        if preset == windows:
            return name
    return None


def sim_quality_config(
    quality: str,
    *,
    message_length: int,
    generation_rate: float,
    total_vcs: int,
    seed: int = 0,
) -> SimulationConfig:
    """Simulation window preset (``smoke`` / ``quick`` / ``full``)."""
    return SimulationConfig(
        message_length=message_length,
        generation_rate=generation_rate,
        total_vcs=total_vcs,
        seed=seed,
        **quality_windows(quality),
    )
