"""Named validation presets: the S5/S6 cross-check grids.

The ROADMAP's "S5/S6 cross-checks at scale" item fixes two standing
suites — each a :class:`~repro.api.scenario.Scenario` plus one workload
and a *stated* model-vs-sim tolerance:

* ``s5`` — S_5 (120 nodes) x {uniform, hotspot, MMPP-2 (on-off)}, the
  tier-1-affordable grid asserted in ``tests/bounds/`` and runnable as
  ``starnet validate --preset s5 --bounds``;
* ``s6`` — the same three workloads on S_6 (720 nodes), the nightly CI
  grid (array engine, pooled replications; see
  ``.github/workflows/nightly-bounds.yml``).

``starnet validate`` exits non-zero whenever a preset's measured
model-vs-sim error exceeds its stated tolerance, so the presets are
executable accuracy claims, not just convenient argument bundles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.scenario import Scenario
from repro.utils.exceptions import ConfigurationError

__all__ = ["ValidationPreset", "preset_suite", "available_presets"]

def _preset_workloads() -> tuple[str, ...]:
    """The representative workload trio of every preset scale.

    Exactly the default validation suite (the paper's uniform/Poisson
    baseline, a non-uniform spatial pattern, and a bursty MMPP-2 on-off
    process) — imported so the presets can never drift from it.  Lazy:
    ``repro.validation``'s package init itself builds on ``repro.api``.
    """
    from repro.validation.workloads import DEFAULT_WORKLOADS

    return DEFAULT_WORKLOADS


@dataclass(frozen=True)
class ValidationPreset:
    """One standing cross-check: a scenario, its workload, a tolerance.

    ``tolerance`` is the *stated* mean relative model-vs-sim error the
    suite commits to; ``starnet validate`` fails (exit 1) when the
    measured error exceeds it.
    """

    name: str
    scenario: Scenario
    tolerance: float

    @property
    def workload(self) -> str:
        return self.scenario.workload


def _suite(
    name: str, order: int, message_length: int, total_vcs: int, tolerances
) -> tuple[ValidationPreset, ...]:
    presets = []
    # strict: a workload added to the default suite must get a stated
    # tolerance here, not silently drop out of the preset grids.
    for workload, tolerance in zip(_preset_workloads(), tolerances, strict=True):
        scenario = Scenario(
            topology="star",
            order=order,
            message_length=message_length,
            total_vcs=total_vcs,
            workload=workload,
            quality="smoke",
            engine="array",
        )
        label = scenario.workload.split("(")[0].split("+")[-1]
        presets.append(
            ValidationPreset(
                name=f"{name}-{label if scenario.workload != 'uniform' else 'uniform'}",
                scenario=scenario,
                tolerance=tolerance,
            )
        )
    return tuple(presets)


#: Stated tolerances: uniform is the paper's validated regime; the
#: non-uniform / bursty extensions claim looser (but still bounded)
#: accuracy, and S6 looser than S5 (shorter relative warmup at 720
#: nodes under the smoke window).
_SUITES = {
    "s5": lambda: _suite("s5", 5, 16, 5, (0.15, 0.30, 0.30)),
    "s6": lambda: _suite("s6", 6, 16, 6, (0.20, 0.35, 0.35)),
}


def available_presets() -> tuple[str, ...]:
    """Registered preset-suite names, alphabetical."""
    return tuple(sorted(_SUITES))


def preset_suite(name: str) -> tuple[ValidationPreset, ...]:
    """The named cross-check suite (``s5`` or ``s6``)."""
    try:
        return _SUITES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown preset suite {name!r}; expected one of {available_presets()}"
        ) from None
