"""Unified Scenario API — one typed facade over model, simulator,
campaigns and validation.

>>> from repro.api import Scenario
>>> s = Scenario(order=4, message_length=16, total_vcs=5)
>>> rows = s.sweep({"rate": s.rate_ladder(), "engine": ("model", "object")})
>>> rows.comparisons()["uniform"].mean_relative_error  # doctest: +SKIP

See ``docs/api.md`` for the full tour and the ResultSet schema policy.
"""

from repro.api.convert import row_from_unit
from repro.api.presets import ValidationPreset, available_presets, preset_suite
from repro.api.quality import QUALITY_WINDOWS, quality_windows, sim_quality_config
from repro.api.results import PROVENANCES, SCHEMA_VERSION, ResultRow, ResultSet
from repro.api.scenario import Scenario, run_units

__all__ = [
    "Scenario",
    "ResultRow",
    "ResultSet",
    "SCHEMA_VERSION",
    "PROVENANCES",
    "row_from_unit",
    "run_units",
    "ValidationPreset",
    "preset_suite",
    "available_presets",
    "QUALITY_WINDOWS",
    "quality_windows",
    "sim_quality_config",
]
