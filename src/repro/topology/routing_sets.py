"""Minimal-path structure of the star graph: path sets and f(i, j, k).

The hardest ingredient of the paper's model is the "number of output
channels for the k-th hop of the j-th path set" — how much adaptivity a
message still has at every step.  In S_n this quantity depends only on the
*cycle type* of the residual permutation:

* position-1 symbol displaced (own cycle of length ``ell``):
  ``f = 1 + (m - ell)`` — send the first symbol home, or merge with any
  position of another non-trivial cycle;
* position-1 symbol home: ``f = m`` — enter any non-trivial cycle.

Minimal hops transform cycle types predictably, so the whole minimal-path
DAG collapses onto the (small) lattice of cycle types.  This module builds
that lattice, counts minimal paths through it, and produces, for every
destination class and hop index, the exact probability distribution of f
over uniformly chosen minimal paths ("path sets" in the paper's language).
An explicit permutation-level enumeration is provided for cross-checking
on small networks.

The collapse is what lets the analytical model run for S_10 and beyond in
milliseconds — precisely the "large systems that are infeasible to
simulate" motivation of the paper's introduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.topology import permutations as pm
from repro.topology.star import profitable_ports_of_relative
from repro.utils.exceptions import TopologyError

__all__ = [
    "CycleType",
    "cycle_type_of",
    "count_permutations_of_type",
    "all_cycle_types",
    "HopStats",
    "PathSetEnumerator",
    "enumerate_minimal_paths",
]


@dataclass(frozen=True, slots=True)
class CycleType:
    """Cycle type of a residual permutation, as routing sees it.

    Attributes
    ----------
    ell:
        Length of the cycle containing position 1, or 0 when the first
        symbol is home.  ``ell == 1`` is never used (a 1-cycle is "home").
    others:
        Sorted (ascending) lengths of the remaining non-trivial cycles.
    """

    ell: int
    others: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.ell == 1 or self.ell < 0:
            raise TopologyError(f"invalid own-cycle length {self.ell}")
        if any(a < 2 for a in self.others):
            raise TopologyError(f"non-trivial cycles must have length >= 2: {self}")
        if tuple(sorted(self.others)) != self.others:
            raise TopologyError(f"others must be sorted ascending: {self}")

    @property
    def m(self) -> int:
        """Number of displaced symbols."""
        return (self.ell if self.ell >= 2 else 0) + sum(self.others)

    @property
    def c(self) -> int:
        """Number of non-trivial cycles."""
        return (1 if self.ell >= 2 else 0) + len(self.others)

    @property
    def distance(self) -> int:
        """Star distance to the identity (Akers-Krishnamurthy)."""
        if self.ell >= 2:
            return self.m + self.c - 2
        return self.m + self.c

    @property
    def f(self) -> int:
        """Number of profitable output channels (the paper's f)."""
        if self.ell >= 2:
            return 1 + sum(self.others)
        return self.m

    @property
    def is_identity(self) -> bool:
        """True for the destination-reached state."""
        return self.ell == 0 and not self.others

    def transitions(self) -> list[tuple["CycleType", int]]:
        """Profitable successors with multiplicities (sum == ``f``).

        Each entry ``(child, w)`` means ``w`` distinct star moves lead from
        a permutation of this type to permutations of type ``child``; every
        move decreases the distance by exactly one.
        """
        out: list[tuple[CycleType, int]] = []
        if self.ell >= 2:
            # Send the first symbol home (1 way).
            new_ell = self.ell - 1 if self.ell > 2 else 0
            out.append((CycleType(new_ell, self.others), 1))
            # Merge the own cycle with another cycle of length a (a ways
            # per cycle: any of its positions).
            for a, mult in _multiplicities(self.others):
                out.append(
                    (CycleType(self.ell + a, _remove_one(self.others, a)), a * mult)
                )
        else:
            # Enter a cycle of length a (a ways per cycle).
            for a, mult in _multiplicities(self.others):
                out.append(
                    (CycleType(a + 1, _remove_one(self.others, a)), a * mult)
                )
        return out

    def min_symbols(self) -> int:
        """Smallest n an instance of this type can live in."""
        return max(self.m if self.ell >= 2 else self.m + 1, 1)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        own = f"[1:{self.ell}]" if self.ell else "[1 home]"
        return f"CycleType({own}, others={list(self.others)})"


def _multiplicities(parts: Sequence[int]) -> list[tuple[int, int]]:
    """Distinct values of ``parts`` with their multiplicities."""
    out: list[tuple[int, int]] = []
    for a in parts:
        if out and out[-1][0] == a:
            out[-1] = (a, out[-1][1] + 1)
        else:
            out.append((a, 1))
    return out


def _remove_one(parts: tuple[int, ...], value: int) -> tuple[int, ...]:
    """Copy of ``parts`` with one occurrence of ``value`` removed."""
    lst = list(parts)
    lst.remove(value)
    return tuple(lst)


def cycle_type_of(rel: pm.Perm) -> CycleType:
    """The :class:`CycleType` of a residual permutation."""
    ell = 0
    others: list[int] = []
    for cyc in pm.cycles_of(rel):
        if len(cyc) < 2:
            continue
        if 1 in cyc:
            ell = len(cyc)
        else:
            others.append(len(cyc))
    return CycleType(ell, tuple(sorted(others)))


def count_permutations_of_type(ctype: CycleType, n: int) -> int:
    """Number of permutations of 1..n whose type is ``ctype``.

    Choose the companions of position 1 and arrange each cycle; unnamed
    positions are fixed points.
    """
    if ctype.min_symbols() > n:
        return 0
    if ctype.ell >= 2:
        ways = math.comb(n - 1, ctype.ell - 1) * math.factorial(ctype.ell - 1)
        remaining = n - ctype.ell
    else:
        ways = 1
        remaining = n - 1
    s = sum(ctype.others)
    if s > remaining:
        return 0
    # Permutations of `remaining` labelled elements with non-trivial cycle
    # lengths exactly `others` and the rest fixed:
    #   remaining! / ((remaining - s)! * prod(a^k_a * k_a!)).
    denom = math.factorial(remaining - s)
    for a, mult in _multiplicities(ctype.others):
        denom *= (a**mult) * math.factorial(mult)
    return ways * math.factorial(remaining) // denom


def all_cycle_types(n: int) -> list[CycleType]:
    """Every cycle type realisable in S_n (identity included)."""
    types: list[CycleType] = []
    for ell in [0, *range(2, n + 1)]:
        budget = n - (ell if ell >= 2 else 1)
        for others in _partitions_min2(budget):
            types.append(CycleType(ell, others))
    return types


def _partitions_min2(budget: int) -> Iterator[tuple[int, ...]]:
    """All ascending-sorted tuples of parts >= 2 with sum <= budget."""

    def rec(remaining: int, min_part: int, acc: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        yield acc
        for part in range(min_part, remaining + 1):
            yield from rec(remaining - part, part, acc + (part,))

    yield from rec(budget, 2, ())


@dataclass(frozen=True)
class HopStats:
    """Per-hop adaptivity statistics for one destination class.

    ``f_dist[k-1]`` maps f -> probability that a message on a uniformly
    random minimal path has exactly f profitable output channels when
    making its k-th hop (k = 1 .. distance).
    """

    ctype: CycleType
    distance: int
    f_dist: tuple[dict[int, float], ...]
    num_paths: int

    def mean_f(self, k: int) -> float:
        """Expected adaptivity at hop ``k`` (1-based)."""
        dist = self.f_dist[k - 1]
        return sum(f * p for f, p in dist.items())

    def expect_pow(self, k: int, base: float) -> float:
        """E[base**f] at hop ``k`` — the blocking-probability kernel."""
        dist = self.f_dist[k - 1]
        return sum(p * base**f for f, p in dist.items())


class PathSetEnumerator:
    """Path-set statistics for S_n destinations, via the cycle-type DAG.

    This object is cheap to build (the type lattice is tiny even for large
    n) and caches per-type hop statistics, so the analytical model can
    query it freely inside its fixed-point iteration.
    """

    def __init__(self, n: int):
        if n < 2:
            raise TopologyError(f"PathSetEnumerator requires n >= 2, got {n}")
        self._n = n
        self._paths_cache: dict[CycleType, int] = {}
        self._stats_cache: dict[CycleType, HopStats] = {}

    @property
    def n(self) -> int:
        """Symbol count of the underlying S_n."""
        return self._n

    def destination_classes(self) -> list[tuple[CycleType, int, int]]:
        """All destination classes: (type, #destinations, distance).

        Destination counts sum to n! - 1 (all non-identity nodes), and the
        count-weighted mean distance equals the closed-form d̄ of Eq. (2) —
        both facts are asserted by the test-suite.
        """
        out = []
        for t in all_cycle_types(self._n):
            if t.is_identity:
                continue
            cnt = count_permutations_of_type(t, self._n)
            if cnt:
                out.append((t, cnt, t.distance))
        return out

    def num_paths(self, ctype: CycleType) -> int:
        """Number of minimal paths from a ``ctype`` state to the identity."""
        hit = self._paths_cache.get(ctype)
        if hit is not None:
            return hit
        if ctype.is_identity:
            result = 1
        else:
            result = sum(w * self.num_paths(child) for child, w in ctype.transitions())
        self._paths_cache[ctype] = result
        return result

    def hop_stats(self, ctype: CycleType) -> HopStats:
        """Exact per-hop f distribution over uniform minimal paths."""
        hit = self._stats_cache.get(ctype)
        if hit is not None:
            return hit
        h = ctype.distance
        total = self.num_paths(ctype)
        # Forward sweep: `level` maps state -> number of path-prefixes of
        # length (k-1) from ctype reaching it; weighting each state by
        # (#prefixes * #suffixes)/total gives the uniform-path occupancy.
        level: dict[CycleType, int] = {ctype: 1}
        dists: list[dict[int, float]] = []
        for _ in range(h):
            dist_k: dict[int, float] = {}
            for state, ways in level.items():
                mass = ways * self.num_paths(state) / total
                dist_k[state.f] = dist_k.get(state.f, 0.0) + mass
            dists.append(dist_k)
            nxt: dict[CycleType, int] = {}
            for state, ways in level.items():
                for child, w in state.transitions():
                    nxt[child] = nxt.get(child, 0) + ways * w
            level = nxt
        # The forward sweep must terminate exactly at the identity.
        if list(level.keys()) != [CycleType(0, ())]:
            raise TopologyError(f"path DAG for {ctype} did not converge to identity")
        stats = HopStats(ctype=ctype, distance=h, f_dist=tuple(dists), num_paths=total)
        self._stats_cache[ctype] = stats
        return stats

    def mean_distance(self) -> float:
        """Count-weighted mean distance over destinations (checks Eq. 2)."""
        classes = self.destination_classes()
        total = sum(cnt for _, cnt, _ in classes)
        return sum(cnt * d for _, cnt, d in classes) / total


def enumerate_minimal_paths(rel: pm.Perm) -> list[list[pm.Perm]]:
    """All minimal paths from residual ``rel`` to the identity (small n).

    Each path is the list of visited residual permutations, starting at
    ``rel`` and ending at the identity.  Exponential — test/verification
    use only.
    """
    n = len(rel)
    ident = pm.identity(n)
    if rel == ident:
        return [[ident]]
    paths: list[list[pm.Perm]] = []
    for port in profitable_ports_of_relative(rel):
        child = pm.star_neighbor(rel, port + 2)
        for tail in enumerate_minimal_paths(child):
            paths.append([rel, *tail])
    return paths
