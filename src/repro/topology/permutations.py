"""Permutation algebra underlying the star graph S_n.

Star-graph nodes are the n! permutations of the symbols 1..n.  We represent
a permutation as a tuple ``p`` of length n with ``p[i]`` the symbol at
*position* i+1, so the identity is ``(1, 2, ..., n)`` and the paper's
generator "interchange the first and i-th symbols" is
:func:`star_neighbor` with ``dim = i``.

Node *indices* (0 .. n!-1) use the Lehmer code via
:func:`permutation_rank` / :func:`permutation_unrank`; index 0 is always
the identity, which the analytical model uses as its canonical source node.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.utils.exceptions import TopologyError

__all__ = [
    "identity",
    "is_permutation",
    "compose",
    "invert",
    "apply_to",
    "parity",
    "cycle_structure",
    "cycles_of",
    "star_neighbor",
    "star_distance",
    "permutation_rank",
    "permutation_unrank",
    "random_permutation",
    "all_permutations",
    "relative_permutation",
]

Perm = tuple[int, ...]


def identity(n: int) -> Perm:
    """The identity permutation (1, 2, ..., n)."""
    if n < 1:
        raise TopologyError(f"permutation size must be >= 1, got {n}")
    return tuple(range(1, n + 1))


def is_permutation(p: Sequence[int]) -> bool:
    """True iff ``p`` is a permutation of 1..len(p)."""
    n = len(p)
    return sorted(p) == list(range(1, n + 1))


def _check(p: Sequence[int]) -> None:
    if not is_permutation(p):
        raise TopologyError(f"not a permutation of 1..{len(p)}: {p!r}")


def compose(p: Sequence[int], q: Sequence[int]) -> Perm:
    """The composition p∘q: position i holds ``p[q[i]-1]``.

    Applying ``compose(p, q)`` is "first q, then p" when permutations are
    read as functions from positions to symbols.
    """
    if len(p) != len(q):
        raise TopologyError("cannot compose permutations of different sizes")
    return tuple(p[x - 1] for x in q)


def invert(p: Sequence[int]) -> Perm:
    """The inverse permutation: ``invert(p)[p[i]-1] == i+1``."""
    inv = [0] * len(p)
    for pos, sym in enumerate(p):
        inv[sym - 1] = pos + 1
    return tuple(inv)


def apply_to(p: Sequence[int], items: Sequence) -> tuple:
    """Rearrange ``items`` so that slot i receives ``items[p[i]-1]``."""
    if len(p) != len(items):
        raise TopologyError("permutation size does not match item count")
    return tuple(items[x - 1] for x in p)


def parity(p: Sequence[int]) -> int:
    """Parity of the permutation: 0 for even, 1 for odd.

    In the star graph every generator is a transposition, so the parity of
    a node equals its colour in the bipartition used by the negative-hop
    routing scheme (section 3 of the paper).
    """
    n = len(p)
    seen = [False] * n
    transpositions = 0
    for start in range(n):
        if seen[start]:
            continue
        length = 0
        j = start
        while not seen[j]:
            seen[j] = True
            j = p[j] - 1
            length += 1
        transpositions += length - 1
    return transpositions & 1


def cycles_of(p: Sequence[int]) -> list[list[int]]:
    """Disjoint cycles of ``p`` (positions, 1-based), fixed points included.

    Each cycle lists positions in traversal order starting from its
    smallest position: position j is followed by position p[j] (the
    position where the symbol currently at j belongs).
    """
    n = len(p)
    seen = [False] * n
    cycles: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        cyc = []
        j = start
        while not seen[j]:
            seen[j] = True
            cyc.append(j + 1)
            j = p[j] - 1
        cycles.append(cyc)
    return cycles


def cycle_structure(p: Sequence[int]) -> tuple[int, int, int]:
    """Return ``(m, c, ell)`` — the star-distance ingredients.

    * ``m``  : number of displaced symbols (positions in non-trivial cycles)
    * ``c``  : number of non-trivial cycles (length >= 2)
    * ``ell``: length of the cycle containing position 1 (0 when position 1
      is a fixed point)

    The star-graph distance to the identity (Akers/Harel/Krishnamurthy) is
    ``m + c`` when position 1 is home and ``m + c - 2`` otherwise; see
    :func:`star_distance`.
    """
    m = 0
    c = 0
    ell = 0
    for cyc in cycles_of(p):
        if len(cyc) >= 2:
            m += len(cyc)
            c += 1
            if 1 in cyc:
                ell = len(cyc)
    return m, c, ell


def star_neighbor(p: Sequence[int], dim: int) -> Perm:
    """The neighbour of ``p`` along dimension ``dim`` (2 <= dim <= n).

    Dimension ``dim`` interchanges the first and dim-th symbols — the
    paper's edge set ``[v1 v2 .. vi .. vn,  vi v2 .. v1 .. vn]``.
    """
    n = len(p)
    if not (2 <= dim <= n):
        raise TopologyError(f"star dimension must be in [2, {n}], got {dim}")
    q = list(p)
    q[0], q[dim - 1] = q[dim - 1], q[0]
    return tuple(q)


def star_distance(p: Sequence[int]) -> int:
    """Minimal number of star moves from ``p`` to the identity.

    Closed form from the cycle structure: ``m + c`` if the first symbol is
    home, else ``m + c - 2``.
    """
    m, c, _ = cycle_structure(p)
    if p[0] == 1:
        return m + c
    return m + c - 2


def permutation_rank(p: Sequence[int]) -> int:
    """Lexicographic rank of ``p`` among all permutations of 1..n.

    The identity has rank 0 and ranks are dense in 0 .. n!-1, providing the
    node indexing used throughout the simulator.
    """
    _check(p)
    n = len(p)
    rank = 0
    fact = math.factorial(n - 1)
    remaining = list(range(1, n + 1))
    for i, sym in enumerate(p):
        idx = remaining.index(sym)
        rank += idx * fact
        remaining.pop(idx)
        if i < n - 1:
            fact //= n - 1 - i
    return rank


def permutation_unrank(rank: int, n: int) -> Perm:
    """Inverse of :func:`permutation_rank`."""
    total = math.factorial(n)
    if not (0 <= rank < total):
        raise TopologyError(f"rank {rank} out of range for n={n} ({total} perms)")
    remaining = list(range(1, n + 1))
    out = []
    fact = math.factorial(n - 1)
    for i in range(n):
        idx, rank = divmod(rank, fact)
        out.append(remaining.pop(idx))
        if i < n - 1:
            fact //= n - 1 - i
    return tuple(out)


def random_permutation(n: int, rng: np.random.Generator) -> Perm:
    """A uniformly random permutation of 1..n drawn from ``rng``."""
    return tuple(int(x) + 1 for x in rng.permutation(n))


@lru_cache(maxsize=8)
def all_permutations(n: int) -> tuple[Perm, ...]:
    """All n! permutations in rank order (cached; intended for n <= 7)."""
    if n > 8:
        raise TopologyError(
            f"refusing to materialise {math.factorial(n)} permutations; "
            "use the cycle-type machinery for large n"
        )
    return tuple(permutation_unrank(r, n) for r in range(math.factorial(n)))


def relative_permutation(src: Sequence[int], dst: Sequence[int]) -> Perm:
    """The residual permutation that routing must reduce to the identity.

    A message at node ``src`` destined for ``dst`` behaves exactly like a
    message at ``relative_permutation(src, dst)`` destined for the
    identity: applying a star generator to the node applies the same
    generator to the residual.  Formally ``dst^{-1} ∘ src``.
    """
    return compose(invert(dst), src)
