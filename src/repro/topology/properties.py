"""Topological comparisons of section 2: star graph vs. hypercube.

The paper's argument for the star graph is quantitative: with ~n! nodes,
degree and diameter are sub-logarithmic in N for S_n but logarithmic for
the hypercube.  :func:`comparison_table` regenerates those numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.topology.hypercube import Hypercube, equivalent_hypercube_dimension
from repro.topology.star import StarGraph, star_average_distance_closed_form

__all__ = ["TopologyRow", "star_row", "hypercube_row", "comparison_table"]


@dataclass(frozen=True)
class TopologyRow:
    """One line of the section-2 comparison."""

    name: str
    nodes: int
    degree: int
    diameter: int
    average_distance: float

    def as_dict(self) -> dict:
        """Plain-dict view for table rendering and JSON export."""
        return {
            "name": self.name,
            "nodes": self.nodes,
            "degree": self.degree,
            "diameter": self.diameter,
            "average_distance": round(self.average_distance, 4),
        }


def star_row(n: int) -> TopologyRow:
    """Properties of S_n without materialising the graph (any n >= 2)."""
    return TopologyRow(
        name=f"S{n}",
        nodes=math.factorial(n),
        degree=n - 1,
        diameter=(3 * (n - 1)) // 2,
        average_distance=star_average_distance_closed_form(n),
    )


def hypercube_row(k: int) -> TopologyRow:
    """Properties of Q_k without materialising the graph."""
    return TopologyRow(
        name=f"Q{k}",
        nodes=1 << k,
        degree=k,
        diameter=k,
        average_distance=k * (1 << (k - 1)) / ((1 << k) - 1),
    )


def comparison_table(n_values: tuple[int, ...] = (3, 4, 5, 6, 7, 8, 9)) -> list[TopologyRow]:
    """S_n rows interleaved with their equivalent (>= n! node) hypercubes."""
    rows: list[TopologyRow] = []
    for n in n_values:
        rows.append(star_row(n))
        rows.append(hypercube_row(equivalent_hypercube_dimension(math.factorial(n))))
    return rows


def verify_row(row: TopologyRow) -> bool:
    """Cross-check a row against an explicit graph (small sizes only)."""
    if row.name.startswith("S"):
        g: StarGraph | Hypercube = StarGraph(int(row.name[1:]))
    else:
        g = Hypercube(int(row.name[1:]))
    ok = (
        g.num_nodes == row.nodes
        and g.degree == row.degree
        and g.diameter() == row.diameter
        and abs(g.average_distance() - row.average_distance) < 1e-9
    )
    return ok
