"""Binary hypercube Q_k, the comparison topology of paper section 2.

The paper motivates the star graph as "an attractive alternative to the
hypercube": with Θ(n!) nodes a hypercube needs degree/diameter Θ(n log n)
while S_n needs only n-1 / floor(3(n-1)/2).  We implement Q_k both for the
properties table and so that the wormhole simulator can run the paper's
stated future-work comparison (star vs. equivalent hypercube) — Q_k is
bipartite (weight parity), so the same negative-hop machinery applies.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.utils.exceptions import TopologyError

__all__ = ["Hypercube", "equivalent_hypercube_dimension"]


def equivalent_hypercube_dimension(num_nodes: int) -> int:
    """Smallest k with 2**k >= num_nodes (the paper's "equivalent" cube)."""
    if num_nodes < 1:
        raise TopologyError("node count must be positive")
    k = 0
    while (1 << k) < num_nodes:
        k += 1
    return max(k, 1)


class Hypercube(Topology):
    """The k-dimensional binary hypercube Q_k (2**k nodes, degree k)."""

    def __init__(self, k: int):
        if k < 1:
            raise TopologyError(f"Hypercube requires k >= 1, got {k}")
        if k > 20:
            raise TopologyError(f"Hypercube k={k} too large to materialise")
        self._k = k
        self._num_nodes = 1 << k
        super().__init__()

    @property
    def k(self) -> int:
        """Dimension count."""
        return self._k

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def degree(self) -> int:
        return self._k

    @property
    def name(self) -> str:
        return f"Q{self._k}"

    def neighbor(self, node: int, port: int) -> int:
        self._check_node(node)
        if not (0 <= port < self._k):
            raise TopologyError(f"port {port} out of range for {self.name}")
        return node ^ (1 << port)

    def distance(self, a: int, b: int) -> int:
        self._check_node(a)
        self._check_node(b)
        return (a ^ b).bit_count()

    def color(self, node: int) -> int:
        self._check_node(node)
        return node.bit_count() & 1

    def diameter(self) -> int:
        return self._k

    def average_distance(self) -> float:
        """k * 2**(k-1) / (2**k - 1): mean Hamming distance to others."""
        return self._k * (1 << (self._k - 1)) / (self._num_nodes - 1)

    def _profitable_ports_uncached(self, cur: int, dst: int) -> tuple[int, ...]:
        diff = cur ^ dst
        return tuple(p for p in range(self._k) if diff >> p & 1)

    def max_negative_hops(self) -> int:
        """``ceil(k/2)`` — colours alternate every hop, as in the star."""
        return (self._k + 1) // 2

    def min_escape_classes(self) -> int:
        """``floor(k/2) + 1`` class-b VCs for negative-hop routing on Q_k."""
        return self._k // 2 + 1
