"""Interconnection-network topologies and their routing structure.

The star graph S_n (the paper's subject) is the primary topology; a binary
hypercube is provided for the comparative studies of paper section 2 and
the stated future work (star vs. equivalent hypercube).
"""

from repro.topology.base import Topology
from repro.topology.hypercube import Hypercube
from repro.topology.permutations import (
    compose,
    cycle_structure,
    identity,
    invert,
    parity,
    permutation_rank,
    permutation_unrank,
    random_permutation,
    star_distance,
    star_neighbor,
)
from repro.topology.routing_sets import (
    CycleType,
    HopStats,
    PathSetEnumerator,
    cycle_type_of,
    enumerate_minimal_paths,
)
from repro.topology.star import StarGraph, profitable_ports_of_relative

__all__ = [
    "Topology",
    "StarGraph",
    "Hypercube",
    "identity",
    "compose",
    "invert",
    "parity",
    "cycle_structure",
    "permutation_rank",
    "permutation_unrank",
    "random_permutation",
    "star_distance",
    "star_neighbor",
    "profitable_ports_of_relative",
    "cycle_type_of",
    "enumerate_minimal_paths",
    "CycleType",
    "HopStats",
    "PathSetEnumerator",
]
