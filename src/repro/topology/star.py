"""The star graph S_n — the paper's interconnection network.

S_n has n! nodes, one per permutation of 1..n; node ``v`` connects through
dimension i (2 <= i <= n) to the permutation obtained by interchanging the
first and i-th symbols.  Degree n-1, diameter ``floor(3(n-1)/2)``,
bipartite by permutation parity — the properties sections 2-3 of the paper
rely on.

Port convention: port ``p`` (0-based) is dimension ``p + 2``.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.topology import permutations as pm
from repro.topology.base import Topology
from repro.utils.exceptions import TopologyError
from repro.utils.mathx import harmonic

__all__ = ["StarGraph", "star_average_distance_closed_form"]


def star_average_distance_closed_form(n: int) -> float:
    """Paper equation (2): mean hops of a uniformly destined message in S_n.

    Averaging the Akers-Krishnamurthy distance ``m + c - 2*[v1 != 1]`` over
    a uniformly random permutation gives

        E[d] = n + H_n - 4 + 2/n                      (over all n! nodes)

    (E[m] = n - 1 displaced symbols, E[c] = H_n - 1 non-trivial cycles,
    P[v1 != 1] = (n-1)/n).  The paper's d̄ averages over the n! - 1
    possible *destinations*, hence the n!/(n!-1) correction.
    """
    if n < 2:
        raise TopologyError(f"star average distance needs n >= 2, got {n}")
    nf = math.factorial(n)
    mean_over_all = n + harmonic(n) - 4.0 + 2.0 / n
    return mean_over_all * nf / (nf - 1)


class StarGraph(Topology):
    """The n-star interconnection network S_n.

    Parameters
    ----------
    n:
        Number of symbols; the network has ``n!`` nodes.  ``n >= 2``.

    Notes
    -----
    Nodes are indexed by the lexicographic rank of their permutation
    (:func:`repro.topology.permutations.permutation_rank`); index 0 is the
    identity, the canonical source node of the analytical model.
    """

    def __init__(self, n: int):
        if n < 2:
            raise TopologyError(f"StarGraph requires n >= 2, got {n}")
        if n > 9:
            raise TopologyError(
                f"StarGraph materialises permutations; n={n} (n! = "
                f"{math.factorial(n)}) is beyond the supported range (<= 9). "
                "Use the analytical cycle-type machinery for larger n."
            )
        self._n = n
        self._num_nodes = math.factorial(n)
        self._perms: list[pm.Perm] = [
            pm.permutation_unrank(r, n) for r in range(self._num_nodes)
        ]
        self._ranks: dict[pm.Perm, int] = {p: r for r, p in enumerate(self._perms)}
        self._colors = bytes(pm.parity(p) for p in self._perms)
        super().__init__()

    # ------------------------------------------------------------------
    # Topology interface
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """The symbol count n of S_n."""
        return self._n

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def degree(self) -> int:
        return self._n - 1

    @property
    def name(self) -> str:
        return f"S{self._n}"

    def permutation_of(self, node: int) -> pm.Perm:
        """The permutation labelling ``node``."""
        self._check_node(node)
        return self._perms[node]

    def node_of(self, perm: pm.Perm | tuple[int, ...]) -> int:
        """The node index of a permutation label."""
        try:
            return self._ranks[tuple(perm)]
        except KeyError:
            raise TopologyError(f"{perm!r} is not a node of {self.name}") from None

    def neighbor(self, node: int, port: int) -> int:
        self._check_node(node)
        if not (0 <= port < self.degree):
            raise TopologyError(f"port {port} out of range for {self.name}")
        return self._ranks[pm.star_neighbor(self._perms[node], port + 2)]

    def distance(self, a: int, b: int) -> int:
        self._check_node(a)
        self._check_node(b)
        rel = pm.relative_permutation(self._perms[a], self._perms[b])
        return pm.star_distance(rel)

    def color(self, node: int) -> int:
        self._check_node(node)
        return self._colors[node]

    def diameter(self) -> int:
        """``floor(3(n-1)/2)`` (Akers-Krishnamurthy)."""
        return (3 * (self._n - 1)) // 2

    def average_distance(self) -> float:
        """Closed-form mean distance over destinations (paper Eq. 2)."""
        return star_average_distance_closed_form(self._n)

    def exact_average_distance(self) -> float:
        """Mean distance by full enumeration (cross-check of Eq. 2)."""
        total = sum(
            pm.star_distance(p) for p in self._perms
        )
        return total / (self._num_nodes - 1)

    def _profitable_ports_uncached(self, cur: int, dst: int) -> tuple[int, ...]:
        rel = pm.relative_permutation(self._perms[cur], self._perms[dst])
        return profitable_ports_of_relative(rel)

    # ------------------------------------------------------------------
    # Star-specific queries used by the routing layer and the model
    # ------------------------------------------------------------------

    def distance_to_identity(self, node: int) -> int:
        """Distance from ``node`` to node 0 (the identity permutation)."""
        self._check_node(node)
        return pm.star_distance(self._perms[node])

    def distance_histogram(self) -> dict[int, int]:
        """Number of nodes at each distance from the identity."""
        hist: dict[int, int] = {}
        for p in self._perms:
            d = pm.star_distance(p)
            hist[d] = hist.get(d, 0) + 1
        return dict(sorted(hist.items()))

    def max_negative_hops(self) -> int:
        """Most negative hops any minimal route can take: ``ceil(H/2)``.

        S_n is bipartite with colours alternating every hop, so a route of
        length h contains ``ceil(h/2)`` negative hops in the worst starting
        colour; the maximum over routes is ``ceil(diameter/2)`` (paper
        section 3).
        """
        return (self.diameter() + 1) // 2

    def min_escape_classes(self) -> int:
        """Class-b virtual channels required for negative-hop routing.

        A message uses class ``l`` (negative hops completed) on each hop, so
        levels 0 .. max_negative_hops are needed in the worst case where a
        positive hop follows the final negative hop; in S_n routes end
        after at most ``ceil(H/2)`` negative hops and the class used never
        exceeds the number of negative hops *before* the final hop, giving
        ``floor(H/2) + 1`` classes.
        """
        return self.diameter() // 2 + 1


def profitable_ports_of_relative(rel: pm.Perm) -> tuple[int, ...]:
    """Ports that reduce the star distance of the residual permutation.

    From the Akers-Krishnamurthy distance ``m + c - 2*[rel_1 != 1]``:

    * first symbol displaced (``rel[0] = x != 1``): profitable moves are
      sending x home (dimension x) and swapping with any position in a
      *different* non-trivial cycle (merging cycles);
    * first symbol home: profitable moves are the positions of every
      displaced symbol (entering a cycle).

    Returns 0-based ports (port = dimension - 2), sorted ascending.
    """
    return _profitable_ports_cached(rel)


@lru_cache(maxsize=200_000)
def _profitable_ports_cached(rel: pm.Perm) -> tuple[int, ...]:
    first = rel[0]
    if first == 1:
        # Position 1 home: enter any non-trivial cycle.
        ports = [
            pos - 2
            for pos in range(2, len(rel) + 1)
            if rel[pos - 1] != pos
        ]
        return tuple(ports)
    ports = set()
    # Send the first symbol to its home position (dimension == symbol).
    ports.add(first - 2)
    # Merge with any other non-trivial cycle: profitable for every position
    # of that cycle.  Positions in the cycle containing position 1 are not
    # profitable (splitting the own cycle increases the distance).
    own_cycle = _positions_of_own_cycle(rel)
    for pos in range(2, len(rel) + 1):
        if rel[pos - 1] != pos and pos not in own_cycle:
            ports.add(pos - 2)
    return tuple(sorted(ports))


def _positions_of_own_cycle(rel: pm.Perm) -> frozenset[int]:
    """Positions (1-based) of the cycle of ``rel`` containing position 1."""
    positions = [1]
    j = rel[0]
    while j != 1:
        positions.append(j)
        j = rel[j - 1]
    return frozenset(positions)
