"""Abstract topology interface shared by the simulator and the model.

A :class:`Topology` is a regular, undirected, connected graph presented as
directed channels: node ``u`` reaches ``neighbor(u, p)`` through *port*
``p`` (0 .. degree-1).  Minimal adaptive routing is exposed through
:meth:`profitable_ports`, the set of ports that strictly decrease the
distance to the destination — the quantity the paper calls the "number of
output channels" f(i, j, k).

Topologies used with hop-based (negative-hop) routing must also expose a
proper 2-colouring via :meth:`color`; both the star graph (parity of the
permutation) and the hypercube (parity of the weight) are bipartite.
"""

from __future__ import annotations

import abc
from functools import lru_cache

import numpy as np

from repro.utils.exceptions import TopologyError

__all__ = ["Topology"]


class Topology(abc.ABC):
    """A regular bipartite network topology with minimal adaptive routing."""

    #: Largest node count for which dense (cur, dst) routing tables are
    #: precomputed at construction; larger networks route on the fly.
    _DENSE_TABLE_LIMIT = 2500

    @property
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Number of nodes N."""

    @property
    @abc.abstractmethod
    def degree(self) -> int:
        """Number of ports (physical output channels) per node."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Human-readable identifier, e.g. ``S5`` or ``Q7``."""

    @abc.abstractmethod
    def neighbor(self, node: int, port: int) -> int:
        """The node reached from ``node`` through ``port``."""

    @abc.abstractmethod
    def distance(self, a: int, b: int) -> int:
        """Length of a shortest path from ``a`` to ``b``."""

    @abc.abstractmethod
    def color(self, node: int) -> int:
        """Bipartition colour (0 or 1) of ``node``."""

    @abc.abstractmethod
    def diameter(self) -> int:
        """The network diameter."""

    @abc.abstractmethod
    def average_distance(self) -> float:
        """Mean distance over ordered pairs of distinct nodes (paper's d̄)."""

    @abc.abstractmethod
    def _profitable_ports_uncached(self, cur: int, dst: int) -> tuple[int, ...]:
        """Ports at ``cur`` that strictly reduce the distance to ``dst``."""

    # ------------------------------------------------------------------
    # Concrete machinery built on the primitives above.
    # ------------------------------------------------------------------

    def __init__(self) -> None:
        self._neighbor_table: np.ndarray | None = None
        self._routing_table: dict[tuple[int, int], tuple[int, ...]] | None = None
        if self.num_nodes <= self._DENSE_TABLE_LIMIT:
            self._routing_table = {}
        # Per-instance memoised fallback for large networks.
        self._route_cache = lru_cache(maxsize=200_000)(self._profitable_ports_uncached)

    @property
    def neighbor_table(self) -> np.ndarray:
        """Dense ``[N, degree]`` int32 table of :meth:`neighbor` results."""
        if self._neighbor_table is None:
            table = np.empty((self.num_nodes, self.degree), dtype=np.int32)
            for u in range(self.num_nodes):
                for p in range(self.degree):
                    table[u, p] = self.neighbor(u, p)
            self._neighbor_table = table
        return self._neighbor_table

    def profitable_ports(self, cur: int, dst: int) -> tuple[int, ...]:
        """Minimal-routing port choices from ``cur`` towards ``dst``.

        Empty exactly when ``cur == dst``.  The result is cached — densely
        for small networks, through an LRU for large ones.
        """
        self._check_node(cur)
        self._check_node(dst)
        if cur == dst:
            return ()
        if self._routing_table is not None:
            hit = self._routing_table.get((cur, dst))
            if hit is None:
                hit = self._profitable_ports_uncached(cur, dst)
                self._routing_table[(cur, dst)] = hit
            return hit
        return self._route_cache(cur, dst)

    def validate_minimal_routing(self) -> None:
        """Cross-check profitable ports against distances (test helper).

        Verifies, for every pair, that each advertised port decreases the
        distance by exactly one and that no unadvertised port does.  Cost is
        O(N^2 * degree) — intended for small test topologies only.
        """
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                if src == dst:
                    continue
                d = self.distance(src, dst)
                good = set(self.profitable_ports(src, dst))
                for p in range(self.degree):
                    nd = self.distance(self.neighbor(src, p), dst)
                    if p in good and nd != d - 1:
                        raise TopologyError(
                            f"{self.name}: port {p} of {src}->{dst} advertised "
                            f"profitable but distance {d}->{nd}"
                        )
                    if p not in good and nd < d:
                        raise TopologyError(
                            f"{self.name}: port {p} of {src}->{dst} reduces "
                            "distance but was not advertised"
                        )

    def to_networkx(self):
        """Export as an undirected :mod:`networkx` graph (for analysis)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        for u in range(self.num_nodes):
            for p in range(self.degree):
                g.add_edge(u, self.neighbor(u, p))
        return g

    def channel_index(self, node: int, port: int) -> int:
        """Dense index of the directed channel leaving ``node`` by ``port``."""
        self._check_node(node)
        if not (0 <= port < self.degree):
            raise TopologyError(f"port {port} out of range for {self.name}")
        return node * self.degree + port

    @property
    def num_channels(self) -> int:
        """Total number of directed network channels (excludes injection)."""
        return self.num_nodes * self.degree

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise TopologyError(
                f"node {node} out of range for {self.name} "
                f"({self.num_nodes} nodes)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(nodes={self.num_nodes}, "
            f"degree={self.degree}, diameter={self.diameter()})"
        )
