"""Structured JSONL event sink and periodic heartbeats.

An :class:`EventSink` appends one JSON object per line to a file —
the campaign engine's lifecycle telemetry (``starnet campaign
--events out.jsonl``).  Every event carries:

* ``ts`` — seconds since the sink opened (monotonic clock, so event
  spacing survives wall-clock adjustments);
* ``type`` — the event name (``campaign_start``, ``unit_finished``,
  ``heartbeat``, ...);
* the emitter's payload fields, passed as keywords.

Serialisation follows the platform's strict-JSON conventions (see
``api/results.py``): non-finite floats become ``null`` — never bare
``NaN``/``Infinity`` tokens, which are invalid JSON — and the dump
runs with ``allow_nan=False`` so a leak would fail loudly rather than
corrupt the stream.  ``emit`` is thread-safe: the line is rendered
outside the lock and written under it in one call, so concurrent
emitters never interleave partial lines.

:class:`Heartbeat` runs a daemon thread emitting a ``heartbeat`` event
every ``interval`` seconds from a caller-supplied field callback —
campaign progress stays observable even when no unit finishes for a
while (one long fused group, a saturated pool).
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Mapping

__all__ = ["EventSink", "Heartbeat", "read_events"]


def _json_safe(value: Any) -> Any:
    """Strict-JSON view: non-finite floats null, containers recurse."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class EventSink:
    """Append-only JSONL event stream, safe for concurrent emitters.

    ``max_bytes`` (optional) bounds the file: once an emit pushes it to
    the limit the stream rotates — ``path`` is atomically renamed to
    ``path.1`` (the previous ``path.1``, if any, to ``path.2``) and a
    fresh file is opened, so long campaigns with heartbeats keep at
    most three generations (~3 × ``max_bytes``) on disk.  Rotation
    happens under the emit lock and uses ``os.replace``, so no event
    line is ever split across files.
    """

    def __init__(self, path: str | Path, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._max_bytes = max_bytes
        self._file = self.path.open("a", encoding="utf-8")
        self._size = self._file.tell()
        self._lock = threading.Lock()
        self._t0 = time.monotonic()
        self._closed = False

    def emit(self, type: str, **fields: Any) -> None:
        """Append one event; a no-op once the sink is closed."""
        event = {"ts": round(time.monotonic() - self._t0, 6), "type": type}
        event.update(_json_safe(fields))
        line = json.dumps(event, sort_keys=True, allow_nan=False) + "\n"
        with self._lock:
            if self._closed:
                return
            self._file.write(line)
            self._file.flush()
            if self._max_bytes is not None:
                self._size += len(line.encode("utf-8"))
                if self._size >= self._max_bytes:
                    self._rotate()

    def _rotate(self) -> None:
        """Shift generations (``path`` → ``.1`` → ``.2``) and reopen.

        Caller holds the lock.  ``os.replace`` is atomic on POSIX, so a
        concurrent reader sees either the old or the new generation,
        never a truncated file.
        """
        self._file.close()
        one = self.path.with_name(self.path.name + ".1")
        two = self.path.with_name(self.path.name + ".2")
        if one.exists():
            os.replace(one, two)
        os.replace(self.path, one)
        self._file = self.path.open("a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._file.close()

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Parse an event JSONL file back into dicts (tests, CI checks)."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


class Heartbeat:
    """Periodic ``heartbeat`` events from a daemon thread.

    ``fields()`` is called outside any sink lock just before each emit;
    it should return a small JSON-safe dict (progress counters, lane
    occupancy).  Use as a context manager so the thread always stops.
    """

    def __init__(
        self,
        sink: EventSink,
        interval_s: float,
        fields: Callable[[], Mapping[str, Any]] | None = None,
    ):
        if interval_s <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {interval_s}")
        self._sink = sink
        self._interval = interval_s
        self._fields = fields
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="starnet-heartbeat", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            payload = dict(self._fields()) if self._fields is not None else {}
            self._sink.emit("heartbeat", **payload)

    def start(self) -> "Heartbeat":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5)

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
