"""A thread-safe metrics registry with Prometheus text exposition.

One :class:`MetricsRegistry` holds named metric families — counters,
gauges and histograms — each optionally split by a fixed tuple of label
names.  The service engine owns one registry per instance (no process
globals: two engines in one test process never share counters), the
HTTP server renders it at ``GET /metrics``, and ``/stats`` reads the
same numbers through :meth:`MetricsRegistry.snapshot`.

Concurrency contract: every mutation (``inc``/``set``/``observe``) and
every read (``value``/``render``/``snapshot``) takes the registry's one
lock.  Increments are therefore atomic across any number of threads —
the property the old ``QueryEngine.counters`` dict lacked — and a
render never observes a histogram's ``sum`` without its matching
``count``.  The critical sections are a few dict operations; nothing
I/O-bound ever runs under the lock.

Histograms use fixed, ascending bucket upper bounds chosen at creation
(:data:`LATENCY_BUCKETS` suits service-side seconds).  Quantiles come
from linear interpolation inside the winning cumulative bucket — the
standard Prometheus ``histogram_quantile`` estimate, computed here so
``/stats`` can report p50/p95 without a scrape pipeline.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable, Mapping

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
]

#: Default histogram layout for service latencies in seconds: sub-ms
#: warm hits through multi-second cold simulations.
LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ConfigurationError(f"invalid metric name {name!r}")
    return name


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats via repr, +Inf/NaN."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _label_key(labelnames: tuple[str, ...], labels: Mapping[str, Any]) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ConfigurationError(
            f"metric expects labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _render_labels(labelnames: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(labelnames, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Metric:
    """Shared shape of one metric family (name, help, label names)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Iterable[str], lock):
        self.name = _check_name(name)
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _check_name(label)
        self._lock = lock

    def _header(self) -> list[str]:
        return [
            f"# HELP {self.name} {_escape_help(self.help_text)}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Metric):
    """Monotonically increasing sum, optionally split by labels."""

    kind = "counter"

    def __init__(self, name, help_text, labelnames, lock):
        super().__init__(name, help_text, labelnames, lock)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _render(self) -> list[str]:
        lines = self._header()
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(self.labelnames, key)} "
                f"{_format_value(self._values[key])}"
            )
        return lines

    def _snapshot(self) -> Any:
        if not self.labelnames:
            return self._values.get((), 0.0)
        return {",".join(k): v for k, v in sorted(self._values.items())}


class Gauge(_Metric):
    """A value that can go up and down (queue depths, occupancy)."""

    kind = "gauge"

    def __init__(self, name, help_text, labelnames, lock):
        super().__init__(name, help_text, labelnames, lock)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    _render = Counter._render
    _snapshot = Counter._snapshot


class Histogram(_Metric):
    """Fixed-bucket histogram with sum/count and quantile estimates."""

    kind = "histogram"

    def __init__(self, name, help_text, labelnames, lock, buckets):
        super().__init__(name, help_text, labelnames, lock)
        edges = tuple(float(b) for b in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ConfigurationError(
                f"histogram {name} needs strictly increasing bucket bounds, got {buckets}"
            )
        self.buckets = edges
        # per label key: [bucket counts..., +Inf count], sum
        self._counts: dict[tuple[str, ...], list[int]] = {}
        self._sums: dict[tuple[str, ...], float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        value = float(value)
        if math.isnan(value):
            return  # NaN observations would poison sum; drop them
        key = _label_key(self.labelnames, labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.buckets) + 1)
                self._sums[key] = 0.0
            for i, edge in enumerate(self.buckets):
                if value <= edge:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] = self._sums[key] + value

    def count(self, **labels: Any) -> int:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return sum(self._counts.get(key, ()))

    def sum(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def quantile(self, q: float, **labels: Any) -> float:
        """Linear-interpolation quantile estimate (NaN when empty).

        Matches PromQL ``histogram_quantile``: the answer lives in the
        first cumulative bucket covering rank ``q * count``, linearly
        interpolated from the bucket's lower edge; observations beyond
        the last finite edge clamp to that edge.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            counts = list(self._counts.get(key, ()))
        total = sum(counts)
        if total == 0:
            return math.nan
        rank = q * total
        cumulative = 0
        for i, edge in enumerate(self.buckets):
            prev_cumulative = cumulative
            cumulative += counts[i]
            if cumulative >= rank:
                lo = 0.0 if i == 0 else self.buckets[i - 1]
                if counts[i] == 0:
                    return edge
                return lo + (edge - lo) * (rank - prev_cumulative) / counts[i]
        return self.buckets[-1]

    def _render(self) -> list[str]:
        lines = self._header()
        for key in sorted(self._counts):
            counts = self._counts[key]
            cumulative = 0
            for edge, n in zip(self.buckets, counts):
                cumulative += n
                labels = _render_labels(
                    self.labelnames, key, f'le="{_format_value(edge)}"'
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            cumulative += counts[-1]
            labels = _render_labels(self.labelnames, key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
            plain = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(self._sums[key])}")
            lines.append(f"{self.name}_count{plain} {cumulative}")
        return lines

    def _snapshot(self) -> Any:
        out = {}
        for key, counts in sorted(self._counts.items()):
            label = ",".join(key) if self.labelnames else ""
            out[label] = {"count": sum(counts), "sum": self._sums[key]}
        if not self.labelnames:
            return out.get("", {"count": 0, "sum": 0.0})
        return out


class MetricsRegistry:
    """Named metric families behind one lock.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    with the same name returns the same family (a kind or label-name
    mismatch raises), so wiring code never needs module-level metric
    singletons.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help_text, labelnames, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, tuple(labelnames))

    def gauge(self, name: str, help_text: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, tuple(labelnames), buckets=tuple(buckets)
        )

    def render(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        with self._lock:
            lines: list[str] = []
            for name in sorted(self._metrics):
                lines.extend(self._metrics[name]._render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe view: metric name -> value / per-label dict."""
        with self._lock:
            return {
                name: metric._snapshot()
                for name, metric in sorted(self._metrics.items())
            }
