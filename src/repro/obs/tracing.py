"""Lightweight trace/span propagation across the service and campaign layers.

A :class:`TraceContext` is three identifiers — ``trace_id`` (one per
top-level request), ``span_id`` (one per operation) and ``parent_id``
(the enclosing span, None at the root) — passed *by value* down the
call chain: service query → tier resolution → refinement enqueue →
campaign unit → simulate call.  Spans are emitted as ordinary
``type="span"`` events through the existing :class:`~repro.obs.events.
EventSink` (fields ``name``, ``trace_id``, ``span_id``, ``parent_id``,
``t0_ns``, ``dur_ns`` plus emitter extras), so one ``--trace-events``
file carries a whole request tree; :func:`export_chrome_trace` rewrites
it as Chrome trace-event JSON loadable in ``chrome://tracing`` /
Perfetto (``starnet trace export``).

Timestamps are ``time.monotonic_ns()`` — span *durations* and
within-process ordering are exact; cross-process alignment is not a
goal (refinement is asynchronous anyway), ancestry comes from the
parent links, never from time containment.

Stdlib-only, allocation-light, and safe to pass between threads (the
context is frozen; sinks serialise their own writes).
"""

from __future__ import annotations

import json
import secrets
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs.events import EventSink, read_events

__all__ = [
    "TraceContext",
    "emit_span",
    "export_chrome_trace",
    "span_timer",
    "span_tree",
]


@dataclass(frozen=True)
class TraceContext:
    """One span's identity within a trace (immutable, value-passed)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def root(cls, trace_id: str | None = None) -> "TraceContext":
        """Start a trace: fresh ids, or adopt a caller-supplied trace id
        (the ``X-Trace-Id`` request header) so distributed callers can
        stitch their own spans onto ours."""
        return cls(
            trace_id=trace_id if trace_id else secrets.token_hex(16),
            span_id=secrets.token_hex(8),
            parent_id=None,
        )

    def child(self) -> "TraceContext":
        """A new span under this one (same trace, parent = this span)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=secrets.token_hex(8),
            parent_id=self.span_id,
        )

    def as_fields(self) -> dict[str, Any]:
        """The id triple as event fields."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


def emit_span(
    sink: EventSink,
    name: str,
    ctx: TraceContext,
    t0_ns: int,
    dur_ns: int,
    **extra: Any,
) -> None:
    """Emit one completed span event (monotonic start + duration)."""
    sink.emit(
        "span",
        name=name,
        t0_ns=int(t0_ns),
        dur_ns=int(dur_ns),
        **ctx.as_fields(),
        **extra,
    )


class span_timer:
    """Context manager: time a block and emit its span on exit.

    Extra fields may be added mid-block via ``set(key=value)`` — they
    ride on the span event.  The span is emitted even when the block
    raises (with ``error`` set to the exception class name), so failed
    requests still appear in the trace.
    """

    def __init__(self, sink: EventSink, name: str, ctx: TraceContext, **extra: Any):
        self._sink = sink
        self._name = name
        self._ctx = ctx
        self._extra = dict(extra)
        self._t0 = 0

    def set(self, **fields: Any) -> None:
        self._extra.update(fields)

    def __enter__(self) -> "span_timer":
        self._t0 = time.monotonic_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._extra.setdefault("error", exc_type.__name__)
        emit_span(
            self._sink,
            self._name,
            self._ctx,
            self._t0,
            time.monotonic_ns() - self._t0,
            **self._extra,
        )


def span_tree(events: list[dict]) -> dict[str | None, list[dict]]:
    """Group span events by parent id (None = roots), t0-ordered.

    Input is any event list (non-span events are skipped); the output
    maps each parent span id to its children, which is what the tests
    and the CI smoke walk to assert a trace is connected.
    """
    spans = [e for e in events if e.get("type") == "span"]
    spans.sort(key=lambda e: e.get("t0_ns", 0))
    tree: dict[str | None, list[dict]] = {}
    for span in spans:
        tree.setdefault(span.get("parent_id"), []).append(span)
    return tree


def export_chrome_trace(
    events_path: str | Path,
    out_path: str | Path | None = None,
    trace_id: str | None = None,
) -> dict:
    """Rewrite span events as Chrome trace-event JSON.

    Each span becomes one complete (``"ph": "X"``) event: timestamps
    and durations convert from nanoseconds to the format's
    microseconds, every trace gets its own ``tid`` lane (first-seen
    order) so concurrent requests stack instead of overlapping, and the
    span/parent ids ride in ``args`` for tooltip inspection.  Pass
    ``trace_id`` to export a single request's tree.  Returns the
    document; writes it to ``out_path`` when given.
    """
    spans = [e for e in read_events(events_path) if e.get("type") == "span"]
    if trace_id is not None:
        spans = [s for s in spans if s.get("trace_id") == trace_id]
    spans.sort(key=lambda e: e.get("t0_ns", 0))
    lanes: dict[str, int] = {}
    trace_events = []
    for span in spans:
        tid = lanes.setdefault(span.get("trace_id", ""), len(lanes) + 1)
        args = {
            k: v
            for k, v in span.items()
            if k not in ("type", "ts", "name", "t0_ns", "dur_ns")
        }
        trace_events.append(
            {
                "ph": "X",
                "name": span.get("name", "span"),
                "cat": "starnet",
                "pid": 1,
                "tid": tid,
                "ts": span.get("t0_ns", 0) / 1000.0,
                "dur": span.get("dur_ns", 0) / 1000.0,
                "args": args,
            }
        )
    doc = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if out_path is not None:
        out = Path(out_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return doc
