"""Monotonic-clock span timers feeding the metrics registry.

Two shapes cover the call sites:

* :class:`Stopwatch` — an explicit start/stop accumulator over
  ``time.perf_counter_ns`` (the same clock class the C megakernel's
  ``CLOCK_MONOTONIC`` profiling uses), for hand-rolled hot loops;
* :func:`span` — a context manager that observes the elapsed seconds
  into a :class:`~repro.obs.registry.Histogram` on exit, exceptional
  or not, for request-scoped timing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.registry import Histogram

__all__ = ["Stopwatch", "span"]


class Stopwatch:
    """Accumulating nanosecond timer over the monotonic clock.

    ``start``/``stop`` pairs add into :attr:`elapsed_ns`; re-entrant
    use is a bug the class guards against rather than silently
    mis-measuring.
    """

    __slots__ = ("elapsed_ns", "laps", "_t0")

    def __init__(self) -> None:
        self.elapsed_ns = 0
        self.laps = 0
        self._t0: int | None = None

    def start(self) -> "Stopwatch":
        if self._t0 is not None:
            raise RuntimeError("Stopwatch.start() while already running")
        self._t0 = time.perf_counter_ns()
        return self

    def stop(self) -> int:
        """Stop and return this lap's nanoseconds."""
        if self._t0 is None:
            raise RuntimeError("Stopwatch.stop() without start()")
        lap = time.perf_counter_ns() - self._t0
        self._t0 = None
        self.elapsed_ns += lap
        self.laps += 1
        return lap

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ns / 1e9


@contextmanager
def span(histogram: Histogram, **labels: Any) -> Iterator[Stopwatch]:
    """Time a block and observe the seconds into ``histogram``.

    The observation happens even when the block raises, so error paths
    stay visible in the latency distribution instead of vanishing.
    """
    watch = Stopwatch().start()
    try:
        yield watch
    finally:
        watch.stop()
        histogram.observe(watch.elapsed_s, **labels)
