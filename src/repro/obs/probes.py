"""Cycle-resolution time-series probes: schema, warmup checks, rendering.

The array simulator's kernels can append one probe sample every k
cycles (``ArraySimulator(probe_interval=k)``): per replication the
in-flight count, cumulative completed count, source-queue backlog and a
histogram of per-channel busy-VC counts, all int64, written identically
by the C megakernel and the numpy fallback (see
``state.SimState.alloc_probes`` for the buffer layout).  This module
turns those raw ring buffers into the surfaced artefacts:

* :func:`build_timeseries` — the ``SimulationResult.timeseries`` dict,
  aggregated across the batch's replications (JSON-friendly lists);
* :func:`mser_truncation` / :func:`warmup_adequacy` — an MSER-style
  steady-state truncation point on the in-flight series, so ``starnet
  validate`` can warn when the configured warmup window ends before
  the transient has died out;
* :func:`sparkline` / :func:`series_rows` — terminal rendering for
  ``starnet watch``.

Unlike the rest of :mod:`repro.obs` this module depends on numpy (it
post-processes kernel buffers); it stays import-safe from worker
threads and never touches the simulator itself.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "adequacy_probe_interval",
    "build_timeseries",
    "default_probe_interval",
    "mser_truncation",
    "series_rows",
    "sparkline",
    "warmup_adequacy",
]

#: Sample count :func:`default_probe_interval` aims for — enough for a
#: sparkline and a stable MSER minimum, cheap enough to probe always.
_TARGET_SAMPLES = 256

#: Per-replication sample columns before the occupancy histogram.
_FIXED_COLS = 3


#: Sample count :func:`adequacy_probe_interval` aims for — fine enough
#: that an MSER batch spans tens of cycles and a short transient is
#: resolvable, still cheap next to the simulation itself.
_ADEQUACY_SAMPLES = 1024


def default_probe_interval(total_cycles: int, samples: int = _TARGET_SAMPLES) -> int:
    """A probe stride giving about ``samples`` samples over the run."""
    if total_cycles < 1:
        raise ValueError(f"total_cycles must be >= 1, got {total_cycles}")
    return max(1, total_cycles // samples)


def adequacy_probe_interval(total_cycles: int) -> int:
    """The finer probe stride the warmup-adequacy check wants.

    :func:`warmup_adequacy` resolves the transient at MSER batch
    granularity (``batch`` consecutive samples), so the stride must keep
    one batch narrower than the transients worth detecting — a ramp
    shorter than a batch is invisible to the truncation rule.  ~1024
    samples over the run puts a 5-sample batch at tens of cycles on the
    standard quality windows.
    """
    return default_probe_interval(total_cycles, samples=_ADEQUACY_SAMPLES)


def build_timeseries(
    data: np.ndarray,
    cycles: np.ndarray,
    *,
    interval: int,
    num_vcs: int,
) -> dict:
    """Aggregate raw probe samples into the surfaced time-series dict.

    ``data`` is the filled slice of the probe ring, shape ``(n, R,
    3 + V + 1)``; ``cycles`` the matching cycle stamps.  Per-replication
    rows are summed (the batch advances as one unit, so whole-batch
    series are the meaningful dynamics view).  Keys:

    * ``interval``, ``replications``, ``total_vcs`` — probe metadata;
    * ``cycles`` — sample cycle stamps;
    * ``in_flight`` — messages in the network, summed over replications;
    * ``completed`` — cumulative completed messages;
    * ``throughput`` — completed-count delta per cycle between samples;
    * ``backlog`` — messages waiting in source queues;
    * ``occupancy`` — per-sample histogram of channels by busy-VC count
      (bins 0..V, summed over replications).

    Everything is plain ints/floats in lists, safe for strict JSON.
    """
    if interval < 1:
        raise ValueError(f"interval must be >= 1, got {interval}")
    n = data.shape[0]
    reps = data.shape[1] if n else 0
    agg = data.sum(axis=1, dtype=np.int64) if n else np.zeros((0, 0))
    completed = agg[:, 1] if n else np.zeros(0, dtype=np.int64)
    # Cycle stamps step uniformly by the interval, so each sample's
    # throughput is its completed delta over one stride (the first
    # sample's baseline is zero completions at cycle -interval).
    delta = np.diff(completed, prepend=0)
    return {
        "interval": int(interval),
        "replications": int(reps),
        "total_vcs": int(num_vcs),
        "cycles": [int(c) for c in cycles[:n]],
        "in_flight": [int(x) for x in (agg[:, 0] if n else [])],
        "completed": [int(x) for x in completed],
        "throughput": [float(d) / interval for d in delta],
        "backlog": [int(x) for x in (agg[:, 2] if n else [])],
        "occupancy": [
            [int(x) for x in row] for row in (agg[:, _FIXED_COLS:] if n else [])
        ],
    }


def mser_truncation(values, batch: int = 5) -> int:
    """MSER-5 truncation index: where deleting the transient stops paying.

    Averages the series into batches of ``batch`` consecutive samples
    (the smoothing that makes White's MSER rule robust on noisy
    observations), then minimises the marginal standard error
    ``sum_{j>=d} (z_j - mean_d)^2 / (k - d)^2`` over candidate batch
    truncation points ``d`` in the first half (restricting d keeps the
    statistic from degenerating on a handful of tail points).  Returns
    the *sample* index where the chosen batch starts — 0 means the
    series was stationary from the start.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    x = np.asarray(values, dtype=np.float64)
    k = x.size // batch
    if k < 4:
        return 0
    z = x[: k * batch].reshape(k, batch).mean(axis=1)
    # Suffix sums give every candidate's tail mean/variance in O(k).
    csum = np.cumsum(z[::-1])[::-1]
    csq = np.cumsum((z * z)[::-1])[::-1]
    d = np.arange(k // 2)
    m = k - d
    tail_sum = csum[d]
    tail_sq = csq[d]
    # sum((z - mean)^2) = sum(z^2) - sum(z)^2 / m
    sse = tail_sq - tail_sum * tail_sum / m
    mser = sse / (m * m)
    return int(np.argmin(mser)) * batch


def warmup_adequacy(
    timeseries: dict,
    warmup_cycles: int,
    *,
    measure_end: int | None = None,
    batch: int = 5,
    effect_threshold: float = 2.0,
) -> dict:
    """Judge a warmup window against the measured transient.

    Runs :func:`mser_truncation` on the aggregate in-flight series
    (restricted to cycles below ``measure_end`` so the drain ramp-down
    never masquerades as a transient) and flags the warmup *inadequate*
    only when two signals agree:

    1. the MSER truncation point lands past the warmup boundary, and
    2. the batch means between the warmup boundary and the truncation
       point — the stretch a short warmup measures but MSER says it
       should not — are displaced from the detected steady state by
       more than ``effect_threshold`` standard errors (steady-state
       batch stddev over the square root of the segment's batch count).

    The second test is what makes the check usable on noisy series: on
    a stationary-but-jittery run MSER's argmin wanders (any truncation
    point is as good as any other), but the batches right after warmup
    then sit squarely inside the steady band — no false alarm; a
    genuinely undercooked warmup measures the ramp-up, whose segment
    mean sits several errors below steady state.  Batching at ``batch``
    samples keeps the means near-independent, so the t-like statistic
    is honest despite the series' autocorrelation.  The caller controls
    sensitivity through the probe stride — sample with
    :func:`adequacy_probe_interval` so one batch stays narrower than
    the transients worth detecting.  Returns::

        {"adequate": bool, "truncation_cycle": int, "warmup_cycles":
         int, "post_warmup_effect": float, "samples": int,
         "series": "in_flight"}

    Fewer than ``8 * batch`` usable samples trivially pass (there is
    no evidence either way).
    """
    cycles = np.asarray(timeseries["cycles"], dtype=np.int64)
    values = np.asarray(timeseries["in_flight"], dtype=np.float64)
    if measure_end is not None:
        keep = cycles < measure_end
        cycles = cycles[keep]
        values = values[keep]
    d = mser_truncation(values, batch=batch)
    truncation_cycle = int(cycles[d]) if cycles.size else 0
    effect = 0.0
    k = values.size // batch
    if truncation_cycle > warmup_cycles and k >= 8:
        z = values[: k * batch].reshape(k, batch).mean(axis=1)
        z_cycles = cycles[: k * batch : batch]
        db = d // batch
        # The segment starts at the batch *containing* the warmup
        # boundary (a ramp shorter than one batch still shows up) and
        # runs to the truncation batch; a degenerate split keeps the
        # straddling batch alone.
        j = max(0, int(np.searchsorted(z_cycles, warmup_cycles, side="right")) - 1)
        segment = z[j : max(db, j + 1)]
        steady = z[db:]
        sd = float(steady.std())
        if sd > 0 and steady.size >= 4:
            effect = abs(float(segment.mean()) - float(steady.mean())) / (
                sd / math.sqrt(segment.size)
            )
    return {
        "adequate": truncation_cycle <= warmup_cycles or effect <= effect_threshold,
        "truncation_cycle": truncation_cycle,
        "warmup_cycles": int(warmup_cycles),
        "post_warmup_effect": round(effect, 3),
        "samples": int(values.size),
        "series": "in_flight",
    }


#: Eight-level bar glyphs, lowest to highest.
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 60) -> str:
    """Render a series as a fixed-width unicode sparkline.

    Longer series are bucketed by mean down to ``width`` columns; a
    constant (or empty) series renders as the lowest bar so the eye
    reads "flat", not "missing".
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    x = np.asarray(values, dtype=np.float64)
    x = x[np.isfinite(x)]
    if x.size == 0:
        return ""
    if x.size > width:
        # Mean-pool into width buckets of near-equal size.
        edges = np.linspace(0, x.size, width + 1).astype(int)
        x = np.array([x[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    lo = float(x.min())
    hi = float(x.max())
    span = hi - lo
    if span <= 0 or not math.isfinite(span):
        return _SPARK_GLYPHS[0] * x.size
    idx = ((x - lo) / span * (len(_SPARK_GLYPHS) - 1)).round().astype(int)
    return "".join(_SPARK_GLYPHS[i] for i in idx)


def series_rows(timeseries: dict, every: int = 1) -> list[dict]:
    """Flatten a time-series dict into table rows (``starnet watch``).

    One row per retained sample: cycle, in-flight, throughput, backlog
    and the busiest occupancy bin.  ``every`` keeps each ``every``-th
    sample (plus the last), so long runs fit a terminal.
    """
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    cycles = timeseries["cycles"]
    n = len(cycles)
    rows = []
    for i in range(n):
        if i % every and i != n - 1:
            continue
        occ = timeseries["occupancy"][i]
        busy = [b for b in range(1, len(occ)) if occ[b]]
        rows.append(
            {
                "cycle": cycles[i],
                "in_flight": timeseries["in_flight"][i],
                "throughput": round(timeseries["throughput"][i], 4),
                "backlog": timeseries["backlog"][i],
                "max_busy_vcs": busy[-1] if busy else 0,
            }
        )
    return rows
