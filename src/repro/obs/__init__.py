"""Observability: metrics registry, span timers, structured events.

The platform's three hot layers — the array simulator's megakernel, the
campaign engine, and the capacity-planning service — each gained real
concurrency over PRs 6-8 without gaining any way to watch it run.  This
package is the shared, dependency-free telemetry layer they report
through:

* :mod:`repro.obs.registry` — a thread-safe :class:`MetricsRegistry`
  of counters, gauges and fixed-bucket histograms, rendered either as
  a JSON-safe snapshot (``/stats``) or in the Prometheus text
  exposition format (``/metrics``);
* :mod:`repro.obs.timers` — monotonic-clock span timers
  (:class:`Stopwatch`, :func:`span`) feeding histograms;
* :mod:`repro.obs.events` — a structured JSONL :class:`EventSink`
  (campaign lifecycle events, heartbeats, optional ``max_bytes``
  rotation) with the same strict-JSON conventions as the ResultSet
  wire format: non-finite floats serialise as ``null``, never as bare
  ``NaN`` tokens;
* :mod:`repro.obs.tracing` — trace/span context propagated service
  query → campaign unit → kernel run, emitted through the event sink
  and exportable as Chrome trace-event JSON;
* :mod:`repro.obs.probes` — the schema, warmup-adequacy detector and
  terminal rendering of the kernels' cycle-resolution time-series
  probes (the one numpy-dependent module here — it post-processes
  kernel buffers).

Everything else is stdlib-only; all of it is safe to import from
worker threads, and nothing in this package ever blocks on I/O while
holding a metric lock.  See ``docs/observability.md`` for the full
metric and event catalogue.
"""

from repro.obs.events import EventSink, Heartbeat, read_events
from repro.obs.probes import (
    adequacy_probe_interval,
    build_timeseries,
    default_probe_interval,
    mser_truncation,
    series_rows,
    sparkline,
    warmup_adequacy,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    LATENCY_BUCKETS,
)
from repro.obs.timers import Stopwatch, span
from repro.obs.tracing import (
    TraceContext,
    emit_span,
    export_chrome_trace,
    span_timer,
    span_tree,
)

__all__ = [
    "Counter",
    "EventSink",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "Stopwatch",
    "TraceContext",
    "adequacy_probe_interval",
    "build_timeseries",
    "default_probe_interval",
    "emit_span",
    "export_chrome_trace",
    "mser_truncation",
    "read_events",
    "series_rows",
    "span",
    "span_timer",
    "span_tree",
    "sparkline",
    "warmup_adequacy",
]
