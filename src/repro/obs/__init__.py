"""Observability: metrics registry, span timers, structured events.

The platform's three hot layers — the array simulator's megakernel, the
campaign engine, and the capacity-planning service — each gained real
concurrency over PRs 6-8 without gaining any way to watch it run.  This
package is the shared, dependency-free telemetry layer they report
through:

* :mod:`repro.obs.registry` — a thread-safe :class:`MetricsRegistry`
  of counters, gauges and fixed-bucket histograms, rendered either as
  a JSON-safe snapshot (``/stats``) or in the Prometheus text
  exposition format (``/metrics``);
* :mod:`repro.obs.timers` — monotonic-clock span timers
  (:class:`Stopwatch`, :func:`span`) feeding histograms;
* :mod:`repro.obs.events` — a structured JSONL :class:`EventSink`
  (campaign lifecycle events, heartbeats) with the same strict-JSON
  conventions as the ResultSet wire format: non-finite floats
  serialise as ``null``, never as bare ``NaN`` tokens.

Everything here is stdlib-only and safe to import from worker threads;
nothing in this package ever blocks on I/O while holding a metric lock.
See ``docs/observability.md`` for the full metric and event catalogue.
"""

from repro.obs.events import EventSink, Heartbeat, read_events
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    LATENCY_BUCKETS,
)
from repro.obs.timers import Stopwatch, span

__all__ = [
    "Counter",
    "EventSink",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "Stopwatch",
    "read_events",
    "span",
]
