"""Append-only JSONL result stores keyed by work-unit content hashes.

Every completed unit is appended as one JSON line::

    {"key": "<sha256>", "kind": "model", "params": {...},
     "result": {...}, "elapsed_s": 0.0021}

Two layouts share that record format:

:class:`ResultStore`
    One JSONL file.  Appends are *atomic and durable*: each record is a
    single ``write(2)`` on an ``O_APPEND`` descriptor, serialised across
    processes by an advisory ``flock`` and fsynced before the lock
    drops, so a crashed or concurrent writer can never interleave or
    tear a line that another writer completed.  A torn tail left by a
    crash mid-write is healed on the next open (the partial line is
    terminated so it can never swallow a later record) and tolerated by
    :meth:`ResultStore.load`.

:class:`ShardedResultStore`
    A directory of shard files, one writer lock per shard, selected by a
    stable hash of the record key.  Concurrent writers (pool workers,
    multiple campaign hosts on a shared filesystem, the capacity
    service's background refiner) contend only when they land on the
    same shard; readers never lock at all.  Record format and content
    hashes are byte-identical to the flat layout — a flat store can be
    poured into a sharded one line by line and every key survives.

Both support offline :meth:`~ResultStore.compact`: rewrite last-wins
deduplicated records through an atomic rename.  Compaction must not run
concurrently with writers (their descriptors would keep appending to the
replaced inode); it is an offline maintenance step.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping

try:  # POSIX advisory locks; absent on exotic platforms -> no-op locking
    import fcntl
except ImportError:  # pragma: no cover - POSIX-only test environment
    fcntl = None  # type: ignore[assignment]

from repro.utils.atomicio import atomic_write_bytes

__all__ = ["ResultStore", "ShardedResultStore", "open_store"]


@contextmanager
def _locked(fd: int) -> Iterator[None]:
    """Exclusive advisory lock on ``fd`` for the duration of the block."""
    if fcntl is None:  # pragma: no cover - POSIX-only test environment
        yield
        return
    fcntl.flock(fd, fcntl.LOCK_EX)
    try:
        yield
    finally:
        fcntl.flock(fd, fcntl.LOCK_UN)


class ResultStore:
    """JSONL persistence for campaign results with hit/append counters.

    ``fsync=False`` trades durability of the last few records for append
    throughput (atomicity and the lock discipline are unaffected) — the
    capacity service's refiner uses the default durable mode; huge
    throwaway campaigns may opt out.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._fd: int | None = None
        #: Units satisfied from disk instead of recomputed (resume hits).
        self.hits = 0
        #: Records appended by this process.
        self.appended = 0

    # -- reading --------------------------------------------------------

    def load(self) -> dict[str, dict]:
        """Read every complete record, keyed by unit hash (last wins).

        A truncated trailing line — the signature of a killed campaign —
        is ignored rather than treated as corruption.
        """
        records: dict[str, dict] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                key = record.get("key")
                if key:
                    records[key] = record
        return records

    def __len__(self) -> int:
        return len(self.load())

    def signature(self) -> tuple:
        """Cheap change token: (size, mtime_ns) of the backing file.

        The capacity service polls this to decide when its in-memory
        index must be rebuilt; any append changes the size.
        """
        try:
            st = self.path.stat()
        except OSError:
            return (0, 0)
        return (st.st_size, st.st_mtime_ns)

    # -- writing --------------------------------------------------------

    def _open_fd(self) -> int:
        """Open the append descriptor, healing a torn tail first.

        A writer killed between ``write`` syscalls (or a non-atomic
        legacy append) can leave the file without a trailing newline.
        Terminating that partial line *before* this process appends
        guarantees the corruption stays confined to the already-lost
        record instead of gluing itself onto a fresh one.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(self.path), os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            with _locked(fd):
                size = os.fstat(fd).st_size
                if size > 0 and os.pread(fd, 1, size - 1) != b"\n":
                    os.write(fd, b"\n")
        except OSError:
            pass
        return fd

    def append(
        self,
        key: str,
        kind: str,
        params: Mapping[str, Any],
        result: Any,
        elapsed_s: float | None = None,
    ) -> None:
        """Append one completed unit atomically and flush it to disk.

        The whole record travels in one ``write(2)`` under an exclusive
        ``flock``, so concurrent writers on the same file (or shard)
        serialise per record and readers only ever observe complete
        lines plus at most one torn tail after a crash.
        """
        record = {"key": key, "kind": kind, "params": dict(params), "result": result}
        if elapsed_s is not None:
            record["elapsed_s"] = round(elapsed_s, 6)
        line = (json.dumps(record, default=str) + "\n").encode("utf-8")
        if self._fd is None:
            self._fd = self._open_fd()
        with _locked(self._fd):
            os.write(self._fd, line)
            if self.fsync:
                os.fsync(self._fd)
        self.appended += 1

    # -- maintenance ----------------------------------------------------

    def compact(self) -> tuple[int, int]:
        """Rewrite the store last-wins deduplicated; (kept, dropped).

        Offline only: the rewrite publishes through an atomic rename, so
        lock-free readers are safe at any moment, but a concurrent
        *writer* holding the old descriptor would keep appending to the
        unlinked inode and lose those records.
        """
        records = self.load()
        if not self.path.exists():
            return (0, 0)
        total = sum(1 for ln in self.path.read_text(encoding="utf-8").splitlines() if ln.strip())
        blob = "".join(
            json.dumps(record, default=str) + "\n" for record in records.values()
        ).encode("utf-8")
        atomic_write_bytes(self.path, blob)
        return (len(records), total - len(records))

    def close(self) -> None:
        """Release the append descriptor (idempotent)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _shard_of(key: str, shards: int) -> int:
    """Stable shard index of a record key (any string, not just hashes)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % shards


class ShardedResultStore(ResultStore):
    """A directory of JSONL shards for many concurrent writers.

    ``path`` is a directory holding ``shard-XX.jsonl`` files; a record
    lands on the shard named by a stable hash of its key, so duplicate
    keys always collide on one shard and last-wins semantics survive the
    merge.  Writers lock only their shard; readers scan all shards
    lock-free.  ``shards`` is fixed at creation and persisted in
    ``shards.json`` so every process agrees on the layout.
    """

    _META = "shards.json"

    def __init__(self, path: str | Path, *, shards: int = 16, fsync: bool = True):
        super().__init__(path, fsync=fsync)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = self._resolve_shard_count(shards)
        self._children: dict[int, ResultStore] = {}

    def _resolve_shard_count(self, requested: int) -> int:
        meta_path = self.path / self._META
        try:
            persisted = json.loads(meta_path.read_text(encoding="utf-8"))
            return int(persisted["shards"])
        except (OSError, ValueError, KeyError, TypeError):
            pass
        if self.path.exists() and any(self.path.glob("shard-*.jsonl")):
            # Legacy/foreign layout without metadata: infer from files.
            count = max(
                (int(p.stem.split("-")[1], 16) for p in self.path.glob("shard-*.jsonl")),
                default=requested - 1,
            ) + 1
            return max(count, 1)
        return requested

    def _write_meta(self) -> None:
        meta_path = self.path / self._META
        if not meta_path.exists():
            atomic_write_bytes(
                meta_path,
                (json.dumps({"shards": self.shards}) + "\n").encode("utf-8"),
            )

    def _shard_path(self, index: int) -> Path:
        return self.path / f"shard-{index:02x}.jsonl"

    def _child(self, index: int) -> ResultStore:
        child = self._children.get(index)
        if child is None:
            self.path.mkdir(parents=True, exist_ok=True)
            self._write_meta()
            child = ResultStore(self._shard_path(index), fsync=self.fsync)
            self._children[index] = child
        return child

    # -- reading --------------------------------------------------------

    def load(self) -> dict[str, dict]:
        records: dict[str, dict] = {}
        if not self.path.exists():
            return records
        for shard_path in sorted(self.path.glob("shard-*.jsonl")):
            records.update(ResultStore(shard_path).load())
        return records

    def signature(self) -> tuple:
        if not self.path.exists():
            return (0, 0)
        parts = []
        for shard_path in sorted(self.path.glob("shard-*.jsonl")):
            try:
                st = shard_path.stat()
            except OSError:
                continue
            parts.append((shard_path.name, st.st_size, st.st_mtime_ns))
        return tuple(parts)

    # -- writing --------------------------------------------------------

    def append(
        self,
        key: str,
        kind: str,
        params: Mapping[str, Any],
        result: Any,
        elapsed_s: float | None = None,
    ) -> None:
        self._child(_shard_of(key, self.shards)).append(key, kind, params, result, elapsed_s)
        self.appended += 1

    # -- maintenance ----------------------------------------------------

    def compact(self) -> tuple[int, int]:
        """Compact every shard (offline; see :meth:`ResultStore.compact`)."""
        kept = dropped = 0
        if not self.path.exists():
            return (0, 0)
        for shard_path in sorted(self.path.glob("shard-*.jsonl")):
            k, d = ResultStore(shard_path).compact()
            kept += k
            dropped += d
        return (kept, dropped)

    def close(self) -> None:
        for child in self._children.values():
            child.close()
        self._children.clear()


def open_store(path: str | Path, *, fsync: bool = True) -> ResultStore:
    """Open a store path with layout detection.

    An existing directory (or a path without a ``.jsonl``/``.json``
    suffix) opens as a :class:`ShardedResultStore`; anything else keeps
    the historical flat-file behaviour, so every existing campaign store
    and ``--out results.jsonl`` invocation is untouched.
    """
    path = Path(path)
    if path.is_dir() or (not path.exists() and path.suffix not in (".jsonl", ".json")):
        return ShardedResultStore(path, fsync=fsync)
    return ResultStore(path, fsync=fsync)
