"""Append-only JSONL result store keyed by work-unit content hashes.

Every completed unit is appended as one JSON line::

    {"key": "<sha256>", "kind": "model", "params": {...},
     "result": {...}, "elapsed_s": 0.0021}

Append-only JSONL makes interruption safe by construction: a campaign
killed mid-write loses at most its final partial line, which
:meth:`ResultStore.load` tolerates, so a ``--resume`` run recomputes
nothing that finished.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

__all__ = ["ResultStore"]


class ResultStore:
    """JSONL persistence for campaign results with hit/append counters."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None
        #: Units satisfied from disk instead of recomputed (resume hits).
        self.hits = 0
        #: Records appended by this process.
        self.appended = 0

    # -- reading --------------------------------------------------------

    def load(self) -> dict[str, dict]:
        """Read every complete record, keyed by unit hash (last wins).

        A truncated trailing line — the signature of a killed campaign —
        is ignored rather than treated as corruption.
        """
        records: dict[str, dict] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                key = record.get("key")
                if key:
                    records[key] = record
        return records

    def __len__(self) -> int:
        return len(self.load())

    # -- writing --------------------------------------------------------

    def append(
        self,
        key: str,
        kind: str,
        params: Mapping[str, Any],
        result: Any,
        elapsed_s: float | None = None,
    ) -> None:
        """Append one completed unit and flush it to disk immediately."""
        record = {"key": key, "kind": kind, "params": dict(params), "result": result}
        if elapsed_s is not None:
            record["elapsed_s"] = round(elapsed_s, 6)
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record, default=str) + "\n")
        self._handle.flush()
        self.appended += 1

    def close(self) -> None:
        """Release the append handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
