"""Campaign engine: declarative, parallel, resumable parameter sweeps.

The paper's pitch is that the analytical model makes "large systems
infeasible to simulate" tractable; this package makes *large scenario
grids* tractable.  A campaign expands a declarative grid
(topology x routing x M x V x traffic x load x seed) into content-hashed
work units, executes them through a pluggable executor (serial or a
process pool), streams results to an append-only JSONL store so
interrupted runs resume instead of recompute, and shares expensive
path-set statistics between workers through an on-disk cache.

Layers
------
:mod:`repro.campaign.grid`
    ``GridSpec`` / ``WorkUnit`` — declarative grids, content-hash keys.
:mod:`repro.campaign.kinds`
    The executable unit kinds (``model``, ``sim``, ``saturation``, ...).
:mod:`repro.campaign.runner`
    ``run_campaign`` — executors, streaming, resume.
:mod:`repro.campaign.store`
    ``ResultStore`` / ``ShardedResultStore`` — append-only JSONL
    persistence with atomic locked appends and offline compaction.
:mod:`repro.campaign.cache`
    Cross-process path-statistics disk cache.
"""

from repro.campaign.grid import GridSpec, WorkUnit, canonical_key
from repro.campaign.kinds import KINDS, available_kinds, register_kind
from repro.campaign.runner import CampaignResult, run_campaign, to_payload
from repro.campaign.store import ResultStore, ShardedResultStore, open_store

__all__ = [
    "GridSpec",
    "WorkUnit",
    "canonical_key",
    "KINDS",
    "available_kinds",
    "register_kind",
    "CampaignResult",
    "run_campaign",
    "to_payload",
    "ResultStore",
    "ShardedResultStore",
    "open_store",
]
