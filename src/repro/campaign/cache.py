"""On-disk cache for expensive path-set statistics.

Building :class:`~repro.core.pathstats.StarPathStatistics` enumerates the
cycle-type DAG — milliseconds for small n but seconds beyond S8, and every
worker process of a parallel campaign would otherwise redo it.  This
module adds a shared pickle layer under a cache directory: the first
process to need S_n (or Q_k) statistics builds and persists them
atomically; every other process — including workers spawned later and
entirely separate campaign runs — loads the pickle.

The cache directory is configured per process (the pool initializer in
:mod:`repro.campaign.runner` propagates it to workers) or via the
``STARNET_CACHE_DIR`` environment variable; with neither set, the loaders
fall back to the in-memory builders and nothing touches disk.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.core.hypercube_model import cached_hypercube_statistics
from repro.core.pathstats import cached_path_statistics
from repro.utils.atomicio import atomic_write_bytes
from repro.utils.exceptions import ConfigurationError

__all__ = ["configure", "configured_dir", "path_statistics"]

_ENV_VAR = "STARNET_CACHE_DIR"
_cache_dir: Path | None = None
#: Per-process pickle-load counter (observable in tests).
disk_hits = 0

_BUILDERS = {
    "star": cached_path_statistics,
    "hypercube": cached_hypercube_statistics,
}
#: Per-process memo of disk-backed loads (the core LRUs cannot be probed
#: without triggering a build).
_memory: dict[tuple[str, int], object] = {}


def configure(cache_dir: str | Path | None) -> None:
    """Set (or clear, with None) this process's cache directory."""
    global _cache_dir
    _cache_dir = None if cache_dir is None else Path(cache_dir)


def configured_dir() -> Path | None:
    """Effective cache directory: explicit configure() beats the env var."""
    if _cache_dir is not None:
        return _cache_dir
    env = os.environ.get(_ENV_VAR)
    return Path(env) if env else None


def _pickle_path(directory: Path, topology: str, order: int) -> Path:
    return directory / f"pathstats-{topology}-{order}.pkl"


def path_statistics(topology: str, order: int, cache_dir: str | Path | None = None):
    """Destination-class statistics for ``topology`` of ``order``.

    Resolution order: in-memory LRU (free) -> disk pickle (cheap) ->
    exact build, persisted for every later process.  Corrupt or
    unreadable pickles fall back to a rebuild.
    """
    global disk_hits
    try:
        builder = _BUILDERS[topology]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology {topology!r}; expected one of {sorted(_BUILDERS)}"
        ) from None
    directory = Path(cache_dir) if cache_dir is not None else configured_dir()
    if directory is None:
        return builder(order)
    memo_key = (topology, order)
    if memo_key in _memory:
        return _memory[memo_key]
    path = _pickle_path(directory, topology, order)
    if path.exists():
        try:
            with path.open("rb") as fh:
                stats = pickle.load(fh)
            disk_hits += 1
            _memory[memo_key] = stats
            return stats
        except Exception:
            pass  # unreadable cache entry: rebuild below and rewrite
    stats = builder(order)
    _memory[memo_key] = stats
    # Atomic durable publish: concurrent workers may race to build the
    # same entry; each writes a private temp file, fsyncs it, and the
    # final rename is atomic, so lock-free readers never observe a
    # half-written (or named-but-unwritten) pickle.
    atomic_write_bytes(path, pickle.dumps(stats, protocol=pickle.HIGHEST_PROTOCOL))
    return stats
