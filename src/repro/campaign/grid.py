"""Declarative parameter grids and content-addressed work units.

A campaign is a cartesian product of named axes (plus pinned scalar
parameters) expanded into :class:`WorkUnit` records.  Each unit carries a
``kind`` (which executor function runs it — see
:mod:`repro.campaign.kinds`) and a plain-dict parameter set, and is
identified by a deterministic content hash of both, so a result store can
recognise work it has already done regardless of expansion order,
process, or host.

Grid specifications can be built in code, from a plain mapping, or from a
small TOML/JSON file::

    kind = "model"
    seeds = 3                 # optional: adds a "seed" axis 0..2

    [axes]
    order = [4, 5]
    rate = "0.002:0.016:8"    # linspace shorthand lo:hi:count

    [pinned]
    message_length = 32
    total_vcs = 6
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.utils.exceptions import ConfigurationError
from repro.utils.text import split_outside_parens

__all__ = [
    "WorkUnit",
    "GridSpec",
    "canonical_key",
    "parse_scalar",
    "parse_axis_values",
]


def _canonical(value: Any) -> Any:
    """Normalise a parameter value into canonical JSON-safe form."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isinf(value) or math.isnan(value):
            raise ConfigurationError(f"non-finite parameter value {value!r} cannot be keyed")
        return value
    if isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in value.items()}
    raise ConfigurationError(f"parameter value {value!r} is not JSON-representable")


def canonical_key(kind: str, params: Mapping[str, Any]) -> str:
    """Deterministic content hash of a (kind, params) pair.

    Key stability is load-bearing for resume: the hash is computed over a
    compact, key-sorted JSON document, so axis declaration order, dict
    insertion order, and the process that produced the unit are all
    irrelevant.
    """
    doc = {"kind": kind, "params": _canonical(dict(params))}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class WorkUnit:
    """One evaluable point of a campaign."""

    kind: str
    params: dict = field(default_factory=dict)

    def key(self) -> str:
        """Content-hash identity of this unit (see :func:`canonical_key`)."""
        return canonical_key(self.kind, self.params)


def parse_scalar(token: str):
    """Parse a CLI/spec token into bool, int, float or str."""
    text = token.strip()
    low = text.lower()
    if low in ("true", "yes"):
        return True
    if low in ("false", "no"):
        return False
    if low in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _linspace(lo: float, hi: float, count: int) -> tuple[float, ...]:
    if count < 2:
        raise ConfigurationError(f"linspace axis needs count >= 2, got {count}")
    step = (hi - lo) / (count - 1)
    # Round away float-noise so keys stay stable across platforms.
    return tuple(round(lo + i * step, 12) for i in range(count))


def parse_axis_values(value) -> tuple:
    """Interpret an axis declaration into a concrete value tuple.

    Accepts a list/tuple of values, a ``"lo:hi:count"`` linspace string,
    or a comma-separated string of scalars.  Commas inside parentheses do
    not split (workload axis values carry parameter lists), and strings
    containing parentheses are never mistaken for linspace declarations.
    """
    if isinstance(value, (list, tuple)):
        if not value:
            raise ConfigurationError("axis value list must not be empty")
        return tuple(value)
    if isinstance(value, str):
        if ":" in value and "(" not in value:
            parts = value.split(":")
            if len(parts) != 3:
                raise ConfigurationError(
                    f"linspace axis must be lo:hi:count, got {value!r}"
                )
            try:
                lo, hi, count = float(parts[0]), float(parts[1]), int(parts[2])
            except ValueError:
                raise ConfigurationError(
                    f"linspace axis must be numeric lo:hi:count, got {value!r}"
                ) from None
            return _linspace(lo, hi, count)
        return tuple(parse_scalar(tok) for tok in split_outside_parens(value, ","))
    return (value,)


@dataclass(frozen=True)
class GridSpec:
    """A declarative campaign: kind, swept axes, pinned parameters.

    Attributes
    ----------
    kind:
        Work-unit kind every expanded unit carries (see
        :mod:`repro.campaign.kinds`).
    axes:
        Ordered ``(name, values)`` pairs; the cartesian product is
        enumerated with the *last* axis varying fastest.
    pinned:
        Scalar parameters shared by every unit.
    seeds:
        Optional replication count; adds a ``seed`` axis ``0..seeds-1``
        as the innermost axis (multi-seed simulation replication).
    """

    kind: str
    axes: tuple[tuple[str, tuple], ...] = ()
    pinned: tuple[tuple[str, Any], ...] = ()
    seeds: int | None = None

    def __post_init__(self) -> None:
        if not self.kind:
            raise ConfigurationError("GridSpec requires a work-unit kind")
        names = [name for name, _ in self.axes]
        clash = set(names) & {name for name, _ in self.pinned}
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate axis names in {names}")
        if clash:
            raise ConfigurationError(f"parameters both pinned and swept: {sorted(clash)}")
        if self.seeds is not None:
            if isinstance(self.seeds, bool) or not isinstance(self.seeds, int):
                raise ConfigurationError(
                    f"seeds must be an integer, got {self.seeds!r}"
                )
            if self.seeds < 1:
                raise ConfigurationError(f"seeds must be >= 1, got {self.seeds}")

    @property
    def effective_axes(self) -> tuple[tuple[str, tuple], ...]:
        """Declared axes plus the implicit seed-replication axis."""
        axes = self.axes
        if self.seeds is not None:
            axes = axes + (("seed", tuple(range(self.seeds))),)
        return axes

    @property
    def size(self) -> int:
        """Number of work units the grid expands into."""
        total = 1
        for _, values in self.effective_axes:
            total *= len(values)
        return total

    def units(self) -> Iterator[WorkUnit]:
        """Expand the grid into work units (deterministic order)."""
        base = dict(self.pinned)
        axes = self.effective_axes
        names = [name for name, _ in axes]
        for combo in itertools.product(*(values for _, values in axes)):
            params = dict(base)
            params.update(zip(names, combo))
            yield WorkUnit(kind=self.kind, params=params)

    def expand(self) -> list[WorkUnit]:
        """All units as a list (convenience for small grids)."""
        return list(self.units())

    # -- construction ---------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "GridSpec":
        """Build from a plain dict (the TOML/JSON document shape)."""
        unknown = set(mapping) - {"kind", "axes", "pinned", "seeds"}
        if unknown:
            raise ConfigurationError(f"unknown grid-spec keys: {sorted(unknown)}")
        if "kind" not in mapping:
            raise ConfigurationError("grid spec must declare a kind")
        axes_map = mapping.get("axes", {})
        if not isinstance(axes_map, Mapping):
            raise ConfigurationError("axes must be a table/object of name -> values")
        axes = tuple((name, parse_axis_values(v)) for name, v in axes_map.items())
        pinned_map = mapping.get("pinned", {})
        if not isinstance(pinned_map, Mapping):
            raise ConfigurationError("pinned must be a table/object of name -> value")
        return cls(
            kind=str(mapping["kind"]),
            axes=axes,
            pinned=tuple(pinned_map.items()),
            seeds=mapping.get("seeds"),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "GridSpec":
        """Load a grid spec from a ``.toml`` or ``.json`` file."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".toml":
            import tomllib

            data = tomllib.loads(text)
        else:
            data = json.loads(text)
        return cls.from_mapping(data)

    @classmethod
    def from_cli(
        cls,
        kind: str,
        axis_args: Sequence[str] = (),
        pinned_args: Sequence[str] = (),
        seeds: int | None = None,
    ) -> "GridSpec":
        """Build from ``--axis name=v1,v2`` / ``--set name=value`` flags."""
        axes = []
        for arg in axis_args:
            name, _, values = arg.partition("=")
            if not name or not values:
                raise ConfigurationError(f"--axis must be NAME=VALUES, got {arg!r}")
            axes.append((name, parse_axis_values(values)))
        pinned = []
        for arg in pinned_args:
            name, _, value = arg.partition("=")
            if not name or not value:
                raise ConfigurationError(f"--set must be NAME=VALUE, got {arg!r}")
            pinned.append((name, parse_scalar(value)))
        return cls(kind=kind, axes=tuple(axes), pinned=tuple(pinned), seeds=seeds)
