"""Built-in work-unit kinds: the functions a campaign can execute.

Each kind maps a plain params dict to a result object.  Kinds live at
module top level so :mod:`concurrent.futures` workers can pickle units by
reference regardless of the start method; custom kinds register through
:func:`register_kind` (the defining module must be importable in worker
processes).

Built-ins
---------
``model``
    Evaluate a latency model at one generation rate -> ``ModelResult``.
``saturation``
    Bracket-expanding saturation search -> ``SaturationSearch``.
``sim``
    One flit-level simulation run -> ``SimulationResult`` (the backend
    comes from the spec's ``engine`` field: object or array).
``sim_batch``
    R replications (``replications`` param, default 8) of one simulation
    point in a single vectorized process -> pooled summary dict with an
    across-replication confidence interval.
``scale_point``
    One row of the large-n scale study (distance stats, saturation,
    half-load latency, solve time) -> dict.
``vc_split_point``
    One row of the VC-split ablation (latency at a fixed rate plus the
    split's saturation rate) -> dict.
``bound``
    Network-calculus delay/backlog bounds at one generation rate ->
    ``BoundResult`` (see :mod:`repro.bounds`).
"""

from __future__ import annotations

import math
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Mapping

from repro.campaign import cache
from repro.core.spec import ModelSpec
from repro.simulation.spec import SimSpec
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "KINDS",
    "register_kind",
    "lookup",
    "available_kinds",
    "fused_sim_group",
    "resolve_jobs",
    "run_units_fused",
]


def resolve_jobs(jobs: int | None) -> int:
    """Resolve a campaign-lane count (the ``--jobs`` knob).

    ``None`` means 1 (serial); ``0`` means one lane per core; explicit
    positive counts are honoured as-is.  Invalid values raise
    :class:`ConfigurationError`.  Unlike the kernel ``threads`` knob this
    never consults ``STARNET_THREADS`` — the two levels would multiply
    into ``jobs x threads`` workers if one variable drove both (see the
    "Parallelism model" section of ``docs/simulation.md``).
    """
    if jobs is None:
        return 1
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ConfigurationError(
            f"jobs must be a non-negative integer (0 = one per core), got {jobs!r}"
        )
    if jobs < 0:
        raise ConfigurationError(
            f"jobs must be >= 0 (0 = one per core), got {jobs}"
        )
    if jobs == 0:
        return max(1, os.cpu_count() or 1)
    return jobs

KINDS: dict[str, Callable[[Mapping[str, Any]], Any]] = {}


def register_kind(name: str):
    """Decorator registering an executor under ``name``."""

    def _register(fn):
        if name in KINDS:
            raise ConfigurationError(f"work-unit kind {name!r} already registered")
        KINDS[name] = fn
        return fn

    return _register


def available_kinds() -> tuple[str, ...]:
    """Registered kind names, alphabetical."""
    return tuple(sorted(KINDS))


def lookup(name: str) -> Callable[[Mapping[str, Any]], Any]:
    """Resolve a kind name to its executor."""
    try:
        return KINDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown work-unit kind {name!r}; available: {', '.join(available_kinds())}"
        ) from None


# ----------------------------------------------------------------------
# Whole-sweep fusion: batch compatible array-engine sim units together
# ----------------------------------------------------------------------

#: SimSpec params free to differ between replications of one batched
#: array simulation; everything else is structural and must match for
#: units to share a SimState (mirrors ArraySimulator's configs check).
_FUSE_VARYING = (
    "generation_rate",
    "seed",
    "warmup_cycles",
    "measure_cycles",
    "drain_cycles",
    "batches",
)


def fused_sim_group(unit) -> tuple | None:
    """Structural grouping key of a fusible work unit, or ``None``.

    ``sim``/``sim_batch`` units on the array engine whose keys agree can
    advance as one batched simulation (each unit expands to one or more
    per-replication configs).  Every other unit — object-engine runs,
    model/bound/scale points — returns ``None`` and executes alone.
    """
    if unit.kind not in ("sim", "sim_batch"):
        return None
    params = dict(unit.params)
    params.pop("replications", None)
    if unit.kind == "sim_batch":
        params.setdefault("engine", "array")
    if params.get("engine") != "array":
        return None
    for name in _FUSE_VARYING:
        params.pop(name, None)
    return tuple(sorted(params.items()))


def _expand_fused_unit(unit) -> list:
    """The per-replication configs one fusible unit contributes."""
    params = dict(unit.params)
    replications = int(params.pop("replications", 8))
    if unit.kind == "sim_batch":
        params.setdefault("engine", "array")
    spec = SimSpec.from_params(params)
    if unit.kind == "sim":
        return [spec.config]
    return [spec.config.with_seed(spec.config.seed + i) for i in range(replications)]


def _run_fused_group(units: list, threads: int | None = None) -> list[Any]:
    """Run one structurally-compatible group as a single batched sim.

    Returns one result per unit, in unit order: ``sim`` units yield
    their single :class:`SimulationResult`, ``sim_batch`` units the
    pooled summary of their replication slice.  Per-replication purity
    of the array backend makes each result bit-identical to running the
    unit on its own.  ``threads`` sizes the kernel worker pool
    (bit-identical for every value); ``None`` defers to the usual
    ``STARNET_THREADS`` / config precedence.
    """
    from repro.simulation.backends import simulate_many, summarize_batch

    configs: list = []
    slices: list[tuple[str, int, int]] = []
    spec = None
    for unit in units:
        cfgs = _expand_fused_unit(unit)
        params = {
            k: v for k, v in unit.params.items() if k != "replications"
        }
        if unit.kind == "sim_batch":
            params.setdefault("engine", "array")
        spec = SimSpec.from_params(params)
        slices.append((unit.kind, len(configs), len(cfgs)))
        configs.extend(cfgs)
    topology, algorithm, _ = spec.build()
    results = simulate_many(
        topology, algorithm, configs, engine="array", threads=threads
    )
    out: list[Any] = []
    for kind, off, n in slices:
        if kind == "sim":
            out.append(results[off])
        else:
            out.append(summarize_batch(results[off : off + n]))
    return out


def run_units_fused(
    units, progress=None, jobs: int | None = None, events=None, trace=None
) -> list[Any]:
    """Execute work units in order, fusing compatible array sim units.

    The single-process, no-store counterpart of
    :func:`repro.campaign.runner.run_campaign`: fusible units (see
    :func:`fused_sim_group`) advance as one batched simulation per
    structural group — a whole rate-ladder × seed grid in one SimState —
    while every other unit executes individually.  Results come back in
    unit order; ``progress(done, total)`` fires as unit results
    materialize (a fused group completes all at once).

    ``jobs > 1`` runs the fused groups (and the non-fusible units)
    concurrently on a thread pool in this process — zero pickling, one
    shared path-statistics cache.  The compiled cycle kernel releases
    the GIL for the whole C-resident run, so lanes genuinely overlap;
    each lane's kernel then runs single-threaded so ``jobs`` alone
    decides the core budget.  Results are bit-identical to ``jobs=1``
    (each lane is an independent simulation; only completion order
    varies, and results are reassembled in unit order).

    ``events`` (an :class:`repro.obs.EventSink` or None) receives one
    ``fused_group`` event per structural group before execution starts —
    the group's unit count is the fan-in the batching saves.  ``trace``
    (a :class:`repro.obs.TraceContext` or None) stamps those events with
    the caller's trace/span ids so a fused sweep stays attributable
    inside a larger trace.
    """
    units = list(units)
    jobs = resolve_jobs(jobs)
    keys = [fused_sim_group(u) for u in units]
    groups: dict[tuple, list[int]] = {}
    for i, key in enumerate(keys):
        if key is not None:
            groups.setdefault(key, []).append(i)
    results: list[Any] = [None] * len(units)
    total = len(units)
    if events is not None:
        solo = sum(1 for key in keys if key is None)
        trace_fields = trace.as_fields() if trace is not None else {}
        for indices in groups.values():
            events.emit(
                "fused_group",
                size=len(indices),
                kinds=sorted({units[j].kind for j in indices}),
                **trace_fields,
            )
        events.emit(
            "fused_plan", units=total, groups=len(groups), unfused=solo,
            **trace_fields,
        )

    if jobs > 1:
        # One task per fused group plus one per non-fusible unit.  The
        # lanes claim the cores, so group sims run their kernel pool
        # serial (threads=1) — jobs x kernel-threads oversubscription
        # is the documented anti-pattern.
        lock = threading.Lock()
        done = 0

        def _advance(n: int) -> None:
            nonlocal done
            with lock:
                done += n
                if progress is not None:
                    progress(done, total)

        def _single(i: int) -> None:
            unit = units[i]
            results[i] = lookup(unit.kind)(unit.params)
            _advance(1)

        def _group(indices: list[int]) -> None:
            fused = _run_fused_group([units[j] for j in indices], threads=1)
            for j, result in zip(indices, fused):
                results[j] = result
            _advance(len(indices))

        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="starnet-job"
        ) as pool:
            futures = []
            seen: set = set()
            for i, key in enumerate(keys):
                if key is None:
                    futures.append(pool.submit(_single, i))
                elif key not in seen:
                    seen.add(key)
                    futures.append(pool.submit(_group, groups[key]))
            for future in futures:
                future.result()
        return results

    done = 0
    started: set = set()
    for i, unit in enumerate(units):
        key = keys[i]
        if key is None:
            results[i] = lookup(unit.kind)(unit.params)
            done += 1
        elif key not in started:
            started.add(key)
            indices = groups[key]
            for j, result in zip(indices, _run_fused_group([units[j] for j in indices])):
                results[j] = result
            done += len(indices)
        else:
            continue
        if progress is not None:
            progress(done, total)
    return results


def _build_model(params: Mapping[str, Any], drop: tuple[str, ...] = ()):
    spec_params = {k: v for k, v in params.items() if k not in drop}
    spec = ModelSpec.from_params(spec_params)
    stats = cache.path_statistics(spec.topology, spec.order)
    return spec.build(stats=stats)


@register_kind("model")
def model_point(params: Mapping[str, Any]):
    """Evaluate the model at ``rate`` (all other params feed ModelSpec)."""
    if "rate" not in params:
        raise ConfigurationError("kind 'model' requires a 'rate' parameter")
    model = _build_model(params, drop=("rate",))
    return model.evaluate(float(params["rate"]))


@register_kind("saturation")
def saturation_point(params: Mapping[str, Any]):
    """Saturation search; optional 'lo'/'hi'/'tol' override the bracket."""
    extras = ("lo", "hi", "tol")
    model = _build_model(params, drop=extras)
    kwargs = {k: float(params[k]) for k in extras if k in params}
    return model.saturation_search(**kwargs)


@register_kind("sim")
def sim_point(params: Mapping[str, Any]):
    """One simulation run described by the flat SimSpec dict."""
    return SimSpec.from_params(params).run()


@register_kind("sim_batch")
def sim_batch_point(params: Mapping[str, Any]):
    """R replications of one simulation point, pooled into a summary row.

    ``replications`` (default 8) seeds run ``seed .. seed + R - 1``.  On
    the array engine (the default here) the whole batch advances in one
    vectorized process — the confidence-interval counterpart of ``sim``.
    """
    from repro.simulation.backends import summarize_batch

    params = dict(params)
    replications = int(params.pop("replications", 8))
    params.setdefault("engine", "array")
    spec = SimSpec.from_params(params)
    return summarize_batch(spec.run_batch(replications))


@register_kind("scale_point")
def scale_point(params: Mapping[str, Any]):
    """One row of the scale study for star order ``n``."""
    n = int(params["n"])
    message_length = int(params.get("message_length", 32))
    extra_adaptive = int(params.get("extra_adaptive", 2))
    diameter = (3 * (n - 1)) // 2
    total_vcs = diameter // 2 + 1 + extra_adaptive
    t0 = time.perf_counter()
    spec = ModelSpec(
        topology="star", order=n, message_length=message_length, total_vcs=total_vcs
    )
    model = spec.build(stats=cache.path_statistics("star", n))
    sat = model.saturation_rate()
    mid = model.evaluate(0.5 * sat if math.isfinite(sat) else 0.01)
    solve_ms = (time.perf_counter() - t0) * 1e3
    return {
        "n": n,
        "nodes": math.factorial(n),
        "degree": n - 1,
        "diameter": diameter,
        "total_vcs": total_vcs,
        "mean_distance": round(model.mean_distance(), 4),
        "zero_load_latency": round(model.zero_load_latency(), 2),
        "half_load_latency": mid.latency,
        "saturation_rate": sat,
        "solve_ms": round(solve_ms, 2),
    }


@register_kind("bound")
def bound_kind(params: Mapping[str, Any]):
    """Network-calculus bounds at ``rate`` (other params feed BoundSpec)."""
    from repro.bounds.analysis import bound_point
    from repro.bounds.network import BoundSpec

    if "rate" not in params:
        raise ConfigurationError("kind 'bound' requires a 'rate' parameter")
    spec = BoundSpec.from_params(
        {k: v for k, v in params.items() if k != "rate"}
    )
    return bound_point(spec, float(params["rate"]))


@register_kind("vc_split_point")
def vc_split_point(params: Mapping[str, Any]):
    """One row of the VC-split ablation (explicit split required)."""
    model = _build_model(params, drop=("rate",))
    res = model.evaluate(float(params["rate"]))
    return {
        "num_adaptive": model.vc.num_adaptive,
        "num_escape": model.vc.num_escape,
        "latency": res.latency,
        "saturated": res.saturated,
        "saturation_rate": model.saturation_rate(),
    }
