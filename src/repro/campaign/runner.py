"""Campaign execution: pluggable executors, streaming store, resume.

:func:`run_campaign` takes an iterable of work units and drives them
through the in-process serial executor, a
:class:`concurrent.futures.ProcessPoolExecutor`
(``executor="processes"``, the default), or a
:class:`concurrent.futures.ThreadPoolExecutor` (``executor="threads"``).
The thread executor runs every unit in this process — zero pickling,
one shared read-only path-statistics cache — and pays off when units
spend their time inside the compiled array kernel, which releases the
GIL for the whole C-resident run; pure-Python units (model solves,
object-engine sims) still contend for the GIL and belong on the process
pool.  Completed units stream to an optional
:class:`~repro.campaign.store.ResultStore` as they finish (completion
order), so killing a campaign loses at most the units in flight; a
``resume=True`` rerun loads the store first and skips every unit whose
content-hash key is already present.

Results are returned in unit order.  Freshly computed units yield rich
result objects (``ModelResult``, ``SimulationResult``, ...); units
satisfied from the store yield the persisted JSON payload dict instead —
campaigns that need rich objects should run without resume.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.campaign import cache
from repro.campaign.grid import WorkUnit
from repro.campaign.kinds import lookup, resolve_jobs
from repro.campaign.store import ResultStore, open_store
from repro.obs import EventSink, Heartbeat, TraceContext, emit_span
from repro.utils.exceptions import ConfigurationError

__all__ = ["CampaignResult", "pool_choice", "run_campaign", "to_payload"]

#: Upper bound on futures kept in flight per pool worker.
_BACKLOG_PER_WORKER = 4

#: Executor names :func:`run_campaign` accepts for ``workers > 1``.
_EXECUTORS = ("processes", "threads")


def pool_choice(workers: int, jobs: int | None) -> tuple[int, str]:
    """Map the ``(workers, jobs)`` knob pair onto ``(width, executor)``.

    ``workers`` names the historical process-pool width; ``jobs`` the
    in-process thread-lane count (``0`` = one per core, ``None`` = off).
    They are alternative spellings of "how wide", so asking for both
    raises :class:`ConfigurationError`.
    """
    jobs = resolve_jobs(jobs)
    if jobs > 1 and workers > 1:
        raise ConfigurationError(
            "choose either workers (process pool) or jobs (in-process "
            "threads), not both"
        )
    if jobs > 1:
        return jobs, "threads"
    return workers, "processes"


def to_payload(result: Any) -> Any:
    """JSON-safe view of a unit result (what the store persists)."""
    if hasattr(result, "as_dict"):
        return result.as_dict()
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return dataclasses.asdict(result)
    if isinstance(result, (list, tuple)):
        return [to_payload(r) for r in result]
    return result


def _execute_unit(unit: WorkUnit, cache_dir: str | None) -> tuple[Any, float]:
    """Run one unit (top-level so pools can pickle it by reference)."""
    if cache_dir is not None:
        cache.configure(cache_dir)
    t0 = time.perf_counter()
    result = lookup(unit.kind)(unit.params)
    return result, time.perf_counter() - t0


def _pool_initializer(cache_dir: str | None) -> None:
    cache.configure(cache_dir)


@dataclass
class CampaignResult:
    """Outcome of one :func:`run_campaign` call."""

    units: list[WorkUnit]
    results: list[Any]
    computed: int
    skipped: int
    elapsed_s: float
    workers: int
    store_path: Path | None = None
    #: Per-unit wall time, aligned with ``units`` (None for store hits).
    unit_elapsed_s: list = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.units)

    @property
    def units_per_second(self) -> float:
        """Computed-unit throughput of this run."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.computed / self.elapsed_s

    def summary(self) -> str:
        """One-line human summary."""
        parts = [
            f"{self.size} units",
            f"{self.computed} computed",
            f"{self.skipped} resumed from store",
            f"{self.elapsed_s:.2f}s",
            f"workers={self.workers}",
        ]
        if self.computed:
            parts.append(f"{self.units_per_second:.1f} units/s")
        return ", ".join(parts)


def _resolve_store(store: ResultStore | str | Path | None) -> tuple[ResultStore | None, bool]:
    if store is None:
        return None, False
    if isinstance(store, ResultStore):
        return store, False
    # Layout detection: directory-ish paths open sharded (concurrent
    # writers), ``.jsonl`` paths keep the historical flat layout.
    return open_store(store), True


def _resolve_events(events: EventSink | str | Path | None) -> tuple[EventSink | None, bool]:
    if events is None:
        return None, False
    if isinstance(events, EventSink):
        return events, False
    return EventSink(events), True


def run_campaign(
    units: Iterable[WorkUnit],
    *,
    workers: int = 1,
    executor: str = "processes",
    store: ResultStore | str | Path | None = None,
    resume: bool = False,
    cache_dir: str | Path | None = None,
    progress: Callable[[int, int], None] | None = None,
    events: EventSink | str | Path | None = None,
    heartbeat_s: float = 10.0,
    trace: TraceContext | None = None,
) -> CampaignResult:
    """Execute ``units``, streaming results to ``store`` as they finish.

    Parameters
    ----------
    workers:
        1 runs serially in-process; > 1 fans out over ``executor``.
    executor:
        ``"processes"`` (default) uses a process pool — full isolation,
        pickling per unit.  ``"threads"`` uses an in-process thread
        pool: zero pickling and one shared cache, worthwhile when the
        units run the array engine (the compiled kernel releases the
        GIL for its whole C-resident run).
    store:
        A :class:`ResultStore`, a path to create one at, or None.
    resume:
        Skip units whose keys the store already holds (their stored
        payload becomes the result).
    cache_dir:
        Path-statistics disk cache shared by all workers.
    progress:
        Optional ``callback(done, total)`` fired after every unit.
    events:
        An :class:`~repro.obs.EventSink`, a JSONL path to create one at,
        or None.  When set, the campaign appends lifecycle telemetry —
        ``campaign_start``, per-unit ``unit_queued`` / ``unit_cached`` /
        ``unit_started`` / ``unit_finished``, periodic ``heartbeat``
        (every ``heartbeat_s`` seconds, with done/total counts and
        executor lane occupancy) and ``campaign_end`` — one JSON object
        per line (see ``docs/observability.md`` for the schema).  Works
        identically on the serial, process and thread executors: every
        event is emitted from the coordinating thread or the heartbeat
        daemon, never from pool workers.
    trace:
        Optional :class:`~repro.obs.TraceContext` linking this campaign
        into a caller's trace (needs ``events``).  The run emits one
        ``campaign.run`` span plus a ``campaign.unit`` span per computed
        unit (children of the run span), and the ``campaign_start`` /
        ``campaign_end`` events carry the trace id.  Unit span start
        times are reconstructed as *end - elapsed* from the coordinating
        thread — durations are exact, ancestry comes from the parent
        links, never from time containment.
    """
    unit_list = list(units)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if executor not in _EXECUTORS:
        raise ConfigurationError(
            f"unknown executor {executor!r}; available: {', '.join(_EXECUTORS)}"
        )
    the_store, owns_store = _resolve_store(store)
    the_sink, owns_sink = _resolve_events(events)
    cache_dir = str(cache_dir) if cache_dir is not None else None

    keys = [u.key() for u in unit_list]
    results: list[Any] = [None] * len(unit_list)
    elapsed: list = [None] * len(unit_list)
    skipped = 0
    if the_store is not None and resume:
        stored = the_store.load()
        for i, key in enumerate(keys):
            record = stored.get(key)
            if record is not None:
                results[i] = record["result"]
                skipped += 1
                the_store.hits += 1
                if the_sink is not None:
                    the_sink.emit(
                        "unit_cached", key=key, kind=unit_list[i].kind
                    )

    # Identical units (same content key) are computed once and shared.
    pending: dict[str, list[int]] = {}
    for i, key in enumerate(keys):
        if the_store is not None and resume and results[i] is not None:
            continue
        pending.setdefault(key, []).append(i)

    done_count = skipped
    total = len(unit_list)
    #: Executor lane occupancy, written by the coordinating thread and
    #: read by the heartbeat daemon (a single int slot: benign race).
    lanes = {"in_flight": 0}
    t0 = time.perf_counter()
    run_ctx = trace.child() if trace is not None and the_sink is not None else None
    run_t0_ns = time.monotonic_ns()

    if the_sink is not None:
        the_sink.emit(
            "campaign_start",
            units=total,
            distinct=len(pending),
            resumed=skipped,
            workers=workers,
            executor=executor if workers > 1 else "serial",
            **({"trace_id": run_ctx.trace_id} if run_ctx is not None else {}),
        )
        for key, indices in pending.items():
            the_sink.emit(
                "unit_queued",
                key=key,
                kind=unit_list[indices[0]].kind,
                fanout=len(indices),
            )

    def _finish(key: str, result: Any, unit_elapsed: float) -> None:
        nonlocal done_count
        indices = pending[key]
        for i in indices:
            results[i] = result
            elapsed[i] = unit_elapsed
        rep = unit_list[indices[0]]
        if the_store is not None:
            the_store.append(key, rep.kind, rep.params, to_payload(result), unit_elapsed)
        done_count += len(indices)
        if the_sink is not None:
            the_sink.emit(
                "unit_finished",
                key=key,
                kind=rep.kind,
                elapsed_s=round(unit_elapsed, 6),
                fanout=len(indices),
                done=done_count,
                total=total,
                in_flight=lanes["in_flight"],
            )
            if run_ctx is not None:
                dur_ns = int(unit_elapsed * 1e9)
                emit_span(
                    the_sink,
                    "campaign.unit",
                    run_ctx.child(),
                    time.monotonic_ns() - dur_ns,
                    dur_ns,
                    key=key,
                    kind=rep.kind,
                )
        if progress is not None:
            progress(done_count, total)

    heartbeat = None
    if the_sink is not None:
        heartbeat = Heartbeat(
            the_sink,
            heartbeat_s,
            fields=lambda: {
                "done": done_count,
                "total": total,
                "in_flight": lanes["in_flight"],
            },
        ).start()
    try:
        if workers == 1:
            for key in list(pending):
                unit = unit_list[pending[key][0]]
                lanes["in_flight"] = 1
                if the_sink is not None:
                    the_sink.emit("unit_started", key=key, kind=unit.kind)
                result, unit_elapsed = _execute_unit(unit, cache_dir)
                lanes["in_flight"] = 0
                _finish(key, result, unit_elapsed)
        else:
            _run_pool(
                unit_list, pending, workers, cache_dir, _finish, executor,
                sink=the_sink, lanes=lanes,
            )
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        if the_sink is not None:
            if run_ctx is not None:
                emit_span(
                    the_sink,
                    "campaign.run",
                    run_ctx,
                    run_t0_ns,
                    time.monotonic_ns() - run_t0_ns,
                    units=total,
                    computed=total - skipped,
                )
            the_sink.emit(
                "campaign_end",
                computed=total - skipped,
                resumed=skipped,
                elapsed_s=round(time.perf_counter() - t0, 6),
                **({"trace_id": run_ctx.trace_id} if run_ctx is not None else {}),
            )
            if owns_sink:
                the_sink.close()
        if the_store is not None and owns_store:
            the_store.close()

    return CampaignResult(
        units=unit_list,
        results=results,
        computed=total - skipped,
        skipped=skipped,
        elapsed_s=time.perf_counter() - t0,
        workers=workers,
        store_path=the_store.path if the_store is not None else None,
        unit_elapsed_s=elapsed,
    )


def _run_pool(
    unit_list: Sequence[WorkUnit],
    pending: dict[str, list[int]],
    workers: int,
    cache_dir: str | None,
    finish: Callable[[str, Any, float], None],
    executor: str = "processes",
    sink: EventSink | None = None,
    lanes: dict | None = None,
) -> None:
    """Pool executor (processes or threads) with a bounded in-flight window.

    Bounding the submission backlog keeps memory flat on huge grids and
    lets results stream to the store (and progress callback) in
    completion order rather than submission order.  ``finish`` always
    runs here in the caller's thread, so the store append and progress
    callback never need their own locking.
    """
    queue = list(pending)
    if executor == "threads":
        # In-process lanes: configure the shared cache once up front and
        # hand the workers cache_dir=None so they never re-configure it
        # concurrently (None leaves any prior configuration in place).
        if cache_dir is not None:
            cache.configure(cache_dir)
        pool_factory = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="starnet-campaign"
        )
        cache_dir = None
    else:
        pool_factory = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_initializer,
            initargs=(cache_dir,),
        )
    with pool_factory as pool:
        in_flight = {}
        max_in_flight = workers * _BACKLOG_PER_WORKER
        cursor = 0
        while cursor < len(queue) or in_flight:
            while cursor < len(queue) and len(in_flight) < max_in_flight:
                key = queue[cursor]
                unit = unit_list[pending[key][0]]
                in_flight[pool.submit(_execute_unit, unit, cache_dir)] = key
                cursor += 1
                if lanes is not None:
                    lanes["in_flight"] = len(in_flight)
                if sink is not None:
                    sink.emit(
                        "unit_started",
                        key=key,
                        kind=unit.kind,
                        in_flight=len(in_flight),
                    )
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                key = in_flight.pop(future)
                if lanes is not None:
                    lanes["in_flight"] = len(in_flight)
                result, unit_elapsed = future.result()
                finish(key, result, unit_elapsed)
