"""Destination-class statistics feeding the blocking model.

Wraps :class:`repro.topology.routing_sets.PathSetEnumerator` into the form
the model iterates over: one record per destination cycle-type class with
its population, distance and per-hop adaptivity (f) distributions — the
paper's "path sets" (Eq. 7), computed exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.topology.routing_sets import CycleType, PathSetEnumerator
from repro.topology.star import star_average_distance_closed_form
from repro.utils.exceptions import ConfigurationError

__all__ = ["DestinationClass", "StarPathStatistics"]


@dataclass(frozen=True)
class DestinationClass:
    """All destinations sharing a residual cycle type (and hence paths)."""

    ctype: CycleType
    count: int
    distance: int
    #: ``f_dist[k-1][f]`` = P(adaptivity == f at hop k) over minimal paths.
    f_dist: tuple[dict[int, float], ...]

    def expect_pow(self, k: int, base: float) -> float:
        """E[base**f] at hop ``k`` — blocked iff all f channels block."""
        if base <= 0.0:
            return 0.0
        return sum(p * base**f for f, p in self.f_dist[k - 1].items())


class StarPathStatistics:
    """Per-destination-class path statistics for S_n (cached singleton)."""

    def __init__(self, n: int):
        if n < 2:
            raise ConfigurationError(f"StarPathStatistics requires n >= 2, got {n}")
        self._n = n
        enum = PathSetEnumerator(n)
        classes = []
        for ctype, count, dist in enum.destination_classes():
            stats = enum.hop_stats(ctype)
            classes.append(
                DestinationClass(
                    ctype=ctype, count=count, distance=dist, f_dist=stats.f_dist
                )
            )
        classes.sort(key=lambda c: (c.distance, -c.count))
        self.classes: tuple[DestinationClass, ...] = tuple(classes)
        self.total_destinations = sum(c.count for c in classes)

    @property
    def n(self) -> int:
        """Symbol count of S_n."""
        return self._n

    @property
    def degree(self) -> int:
        """Node degree, n - 1."""
        return self._n - 1

    @property
    def diameter(self) -> int:
        """floor(3(n-1)/2)."""
        return (3 * (self._n - 1)) // 2

    def mean_distance(self) -> float:
        """Count-weighted mean distance; equals Eq. (2) exactly."""
        acc = sum(c.count * c.distance for c in self.classes)
        return acc / self.total_destinations

    def verify_against_closed_form(self) -> None:
        """Assert internal consistency with Eq. (2) and the node count."""
        if self.total_destinations != math.factorial(self._n) - 1:
            raise ConfigurationError(
                f"destination classes cover {self.total_destinations} nodes, "
                f"expected {math.factorial(self._n) - 1}"
            )
        closed = star_average_distance_closed_form(self._n)
        if abs(self.mean_distance() - closed) > 1e-9:
            raise ConfigurationError(
                f"mean distance {self.mean_distance()} != closed form {closed}"
            )


@lru_cache(maxsize=16)
def cached_path_statistics(n: int) -> StarPathStatistics:
    """Shared per-n instance (building one is pure and deterministic)."""
    stats = StarPathStatistics(n)
    stats.verify_against_closed_form()
    return stats
