"""The paper's contribution: an analytical latency model for S_n.

Implements equations (1)-(19) of the paper: mean distance (Eq. 2), channel
rates (Eq. 3), per-hop blocking over path sets (Eqs. 4-11), M/G/1 waiting
times (Eqs. 12-16), birth-death virtual-channel occupancy (Eq. 18), the
Dally multiplexing factor (Eq. 19), and the damped fixed-point iteration
the paper describes for resolving their inter-dependencies.
"""

from repro.core.blocking import BlockingModel, BlockingVariant
from repro.core.hypercube_model import HypercubePathStatistics
from repro.core.model import (
    HypercubeLatencyModel,
    ModelResult,
    SaturationSearch,
    StarLatencyModel,
)
from repro.core.nonuniform import NonUniformLatencyModel
from repro.core.occupancy import multiplexing_degree, vc_occupancy
from repro.core.pathstats import DestinationClass, StarPathStatistics
from repro.core.queueing import (
    burstiness_factor,
    channel_waiting_time,
    gg1_waiting_time,
    source_waiting_time,
)
from repro.core.solver import FixedPointSolver, SolverSettings
from repro.core.spec import ModelSpec

__all__ = [
    "StarLatencyModel",
    "HypercubeLatencyModel",
    "NonUniformLatencyModel",
    "HypercubePathStatistics",
    "ModelResult",
    "ModelSpec",
    "SaturationSearch",
    "BlockingModel",
    "BlockingVariant",
    "StarPathStatistics",
    "DestinationClass",
    "vc_occupancy",
    "multiplexing_degree",
    "channel_waiting_time",
    "source_waiting_time",
    "gg1_waiting_time",
    "burstiness_factor",
    "FixedPointSolver",
    "SolverSettings",
]
