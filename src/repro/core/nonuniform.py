"""Non-uniform / bursty extension of the analytical latency model.

The paper's pipeline collapses the network to one scalar channel rate
(Eq. 3) because assumption (a) — uniform destinations — makes every
channel statistically identical.  This module lifts that restriction:

1. the workload's spatial pattern is propagated over the minimal-path
   DAG of the *explicit* star graph (:mod:`repro.workloads.flows`),
   yielding the arrival rate of every directed channel and the share of
   traffic in every destination class;
2. each channel keeps its own M/G/1 wait and birth-death VC occupancy
   (Eqs. 12-15 and 18 evaluated per channel);
3. what a routing header experiences is approximated by the
   *flow-weighted* average of those per-channel quantities — a message
   meets a channel in proportion to the traffic it carries — which then
   feeds the unchanged per-hop blocking machinery (Eqs. 6-11) and the
   same damped fixed point over the mean network latency;
4. non-Poisson temporal processes enter through the Allen-Cunneen G/G/1
   factor applied to channel and source waits, driven by the process's
   inter-arrival SCV (:func:`repro.core.queueing.burstiness_factor`).

For the uniform Poisson workload every channel carries Eq. (3)'s rate,
the class weights equal the destination-class counts, and the SCV is 1 —
all three corrections vanish and the pipeline reduces to the published
model (verified to ~1e-9 relative in the test-suite; the residual is
float summation noise in the flow propagation).

Saturation is declared when the *hottest* channel reaches unit
utilisation — for hotspot workloads this is the channel feeding the hot
node, which saturates long before the network-average rate does.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.model import ModelResult, StarLatencyModel
from repro.core.occupancy import multiplexing_degree
from repro.core.queueing import burstiness_factor, gg1_waiting_time
from repro.utils.exceptions import ConfigurationError
from repro.workloads.flows import cached_flow_profile
from repro.workloads.spec import WorkloadSpec

__all__ = ["NonUniformLatencyModel"]


class NonUniformLatencyModel(StarLatencyModel):
    """Mean message latency in S_n under an arbitrary workload.

    Parameters
    ----------
    n:
        Star order; the explicit flow propagation needs
        ``n <= repro.workloads.flows.MAX_FLOW_ORDER``.
    message_length / total_vcs / vc_config / variant / solver:
        As for :class:`~repro.core.model.StarLatencyModel`.
    workload:
        A :class:`~repro.workloads.spec.WorkloadSpec`, grammar string, or
        mapping.  The spatial part shapes per-channel rates and class
        weights; the temporal part contributes the burstiness factor.
    stats:
        Optional shared :class:`~repro.core.pathstats.StarPathStatistics`.
    """

    def __init__(
        self,
        n: int,
        message_length: int,
        total_vcs: int,
        *,
        workload: WorkloadSpec | str | None = None,
        stats=None,
        **kwargs,
    ):
        super().__init__(n, message_length, total_vcs, stats=stats, **kwargs)
        self.workload = WorkloadSpec.coerce(workload)
        self._spec_workload = self.workload.canonical
        self._scv = self.workload.interarrival_scv()
        profile = cached_flow_profile(n, self.workload.spatial_canonical)
        self._profile = profile
        rates = profile.unit_channel_rates
        self._unit_rates = rates[rates > 0.0]
        by_ctype = {cls.ctype: cls for cls in self.stats.classes}
        weighted = []
        for ctype, weight in profile.class_weights:
            cls = by_ctype.get(ctype)
            if cls is None:
                raise ConfigurationError(
                    f"workload routes to cycle type {ctype} unknown to the "
                    f"S{n} path statistics"
                )
            weighted.append((weight, cls))
        self._weighted_classes = tuple(weighted)

    # -- workload-aware statistics --------------------------------------

    def mean_distance(self) -> float:
        """Flow-weighted mean message distance (replaces Eq. 2)."""
        return self._profile.mean_distance

    def peak_channel_rate(self, generation_rate: float) -> float:
        """Arrival rate of the hottest channel at ``generation_rate``."""
        if generation_rate < 0:
            raise ConfigurationError(f"generation rate must be >= 0, got {generation_rate}")
        return generation_rate * self._profile.peak_channel_rate

    # -- flow-weighted pipeline -----------------------------------------

    def _weighted_occupancy(self, rates: np.ndarray, rho: np.ndarray) -> list[float]:
        """Flow-weighted busy-VC distribution (Eq. 18 averaged over channels)."""
        num_vcs = self.vc.total
        weight = rates.sum()
        powers = rho[None, :] ** np.arange(num_vcs + 1)[:, None]
        occ = [
            float((rates * powers[v] * (1.0 - rho)).sum() / weight)
            for v in range(num_vcs)
        ]
        occ.append(float((rates * powers[num_vcs]).sum() / weight))
        return occ

    def _weighted_channel_wait(self, rates: np.ndarray, rho: np.ndarray, s_bar: float) -> float:
        """Flow-weighted mean wait over channels (Eq. 15 per channel, G/G/1)."""
        m = float(self.message_length)
        variance = (s_bar - m) ** 2
        waits = rates * (s_bar * s_bar + variance) / (2.0 * (1.0 - rho))
        factor = burstiness_factor(self._scv, s_bar, m)
        return float((rates * waits).sum() / rates.sum()) * factor

    def _network_latency_map_nonuniform(self, generation_rate: float):
        """The scalar map S -> F(S) with per-channel rates behind it."""
        m = float(self.message_length)
        rates = generation_rate * self._unit_rates
        classes = self._weighted_classes

        def f(s_bar: float) -> float:
            if generation_rate == 0.0:
                return sum(w * (m + cls.distance) for w, cls in classes)
            rho = rates * s_bar
            if float(rho.max()) >= 1.0:
                return math.inf
            w_mean = self._weighted_channel_wait(rates, rho, s_bar)
            occ = self._weighted_occupancy(rates, rho)
            acc = 0.0
            for weight, cls in classes:
                blocking_sum = self.blocking.class_blocking_sum(occ, cls)
                acc += weight * (m + cls.distance + w_mean * blocking_sum)
            return acc  # class weights sum to one

        return f

    # -- public evaluation ----------------------------------------------

    def evaluate(self, generation_rate: float) -> ModelResult:
        """Predict the mean message latency at ``generation_rate``."""
        lambda_c = self.channel_rate(generation_rate)  # mean rate, reporting
        fp = self.solver.solve(
            self._network_latency_map_nonuniform(generation_rate),
            self.zero_load_latency(),
        )
        if fp.saturated:
            return ModelResult(
                generation_rate=generation_rate,
                latency=math.inf,
                network_latency=math.inf,
                source_wait=math.inf,
                channel_wait=math.inf,
                multiplexing=math.nan,
                channel_rate=lambda_c,
                rho=math.inf,
                saturated=True,
                iterations=fp.iterations,
            )
        s_bar = fp.value
        peak_rho = self.peak_channel_rate(generation_rate) * s_bar
        if generation_rate > 0.0:
            rates = generation_rate * self._unit_rates
            rho = rates * s_bar
            occ = self._weighted_occupancy(rates, rho)
            w = self._weighted_channel_wait(rates, rho, s_bar)
        else:
            occ = [1.0] + [0.0] * self.vc.total
            w = 0.0
        w_s = gg1_waiting_time(
            generation_rate / self.vc.total, s_bar, self.message_length, self._scv
        )
        v_bar = multiplexing_degree(occ)
        saturated = not math.isfinite(w_s)
        latency = (s_bar + w_s) * v_bar if not saturated else math.inf
        return ModelResult(
            generation_rate=generation_rate,
            latency=latency,
            network_latency=s_bar,
            source_wait=w_s,
            channel_wait=w,
            multiplexing=v_bar,
            channel_rate=lambda_c,
            rho=peak_rho,
            saturated=saturated,
            iterations=fp.iterations,
        )
