"""The analytical latency model for adaptive wormhole routing in S_n.

Assembles the paper's pipeline:

* Eq. (2): mean message distance d̄ (exact, via destination classes);
* Eq. (3): channel rate ``lambda_c = lambda_g * d̄ / (n - 1)``;
* Eqs. (4)-(11): mean network latency S̄ with per-hop blocking over path
  sets (exact f distributions from the cycle-type DAG);
* Eqs. (12)-(15): channel waiting time w (M/G/1);
* Eq. (16): source queueing W_s;
* Eq. (18): virtual-channel occupancy P_v;
* Eq. (19): multiplexing degree V̄;
* Eq. (1): ``Latency = (S̄ + W_s) * V̄``.

The model never touches an explicit graph: everything is computed from
cycle-type combinatorics, so it runs in milliseconds for any n — exactly
the "large systems infeasible to simulate" use-case the paper motivates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.blocking import BlockingModel, BlockingVariant
from repro.core.occupancy import multiplexing_degree, vc_occupancy
from repro.core.pathstats import cached_path_statistics
from repro.core.queueing import channel_waiting_time, source_waiting_time
from repro.core.solver import FixedPointSolver, SolverSettings
from repro.routing.vc_classes import VcConfig
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "ModelResult",
    "SaturationSearch",
    "StarLatencyModel",
    "HypercubeLatencyModel",
]


@dataclass(frozen=True)
class ModelResult:
    """One operating point predicted by the model."""

    generation_rate: float
    latency: float
    network_latency: float
    source_wait: float
    channel_wait: float
    multiplexing: float
    channel_rate: float
    rho: float
    saturated: bool
    iterations: int

    def as_dict(self) -> dict:
        """JSON/table-friendly view."""
        def _r(x: float) -> float | None:
            return None if math.isinf(x) or math.isnan(x) else round(x, 4)

        return {
            "generation_rate": self.generation_rate,
            "latency": _r(self.latency),
            "network_latency": _r(self.network_latency),
            "source_wait": _r(self.source_wait),
            "channel_wait": _r(self.channel_wait),
            "multiplexing": _r(self.multiplexing),
            "channel_rate": round(self.channel_rate, 6),
            "rho": _r(self.rho),
            "saturated": self.saturated,
            "iterations": self.iterations,
        }


@dataclass(frozen=True)
class SaturationSearch:
    """Outcome of a bracket-expanding saturation search.

    Attributes
    ----------
    rate:
        Smallest generation rate at which the model saturates (``inf``
        if no saturated rate was found within the expansion cap).
    bracket:
        The ``(lo, hi)`` bracket actually handed to bisection — ``hi``
        saturated, ``lo`` did not (or is the search floor).
    expansions:
        Geometric doublings applied before a saturating ``hi`` appeared.
    evaluations:
        Total model evaluations spent (expansion + bisection).
    converged:
        False only when the expansion cap was hit without bracketing.
    """

    rate: float
    bracket: tuple[float, float]
    expansions: int
    evaluations: int
    converged: bool


class _WormholeLatencyModel:
    """Shared model pipeline over any destination-class statistics.

    Subclasses supply ``stats`` (an object with ``classes``, ``degree``,
    ``diameter``, ``total_destinations`` and ``mean_distance()``) — the
    star graph via cycle types, the hypercube via binomial distance
    classes.  Everything downstream of the path-set statistics is the
    paper's pipeline verbatim.
    """

    #: Canonical workload string carried into :meth:`spec`; None means the
    #: paper's uniform/Poisson workload (subclasses override per instance).
    _spec_workload: str | None = None

    def __init__(
        self,
        stats,
        message_length: int,
        total_vcs: int,
        *,
        vc_config: VcConfig | None = None,
        variant: BlockingVariant | str = BlockingVariant.EXACT,
        solver: SolverSettings | None = None,
    ):
        if message_length < 1:
            raise ConfigurationError(f"message_length must be >= 1, got {message_length}")
        self.message_length = message_length
        self.stats = stats
        if vc_config is None:
            need = stats.diameter // 2 + 1
            if total_vcs < need:
                raise ConfigurationError(
                    f"this network needs at least {need} virtual channels for "
                    f"the negative-hop escape layer, got {total_vcs}"
                )
            vc_config = VcConfig(num_adaptive=total_vcs - need, num_escape=need)
        elif vc_config.total != total_vcs:
            raise ConfigurationError(
                f"vc_config totals {vc_config.total} VCs but total_vcs={total_vcs}"
            )
        self.vc = vc_config
        self.blocking = BlockingModel(self.vc, variant)
        self.solver = FixedPointSolver(solver)

    # -- derived constants ------------------------------------------------

    @property
    def degree(self) -> int:
        """Physical channels per node, n - 1."""
        return self.stats.degree

    def mean_distance(self) -> float:
        """d̄ of Eq. (2) (exact enumeration over destination classes)."""
        return self.stats.mean_distance()

    def channel_rate(self, generation_rate: float) -> float:
        """lambda_c of Eq. (3)."""
        if generation_rate < 0:
            raise ConfigurationError(f"generation rate must be >= 0, got {generation_rate}")
        return generation_rate * self.mean_distance() / self.degree

    def zero_load_latency(self) -> float:
        """M + d̄ — the network latency floor."""
        return self.message_length + self.mean_distance()

    # -- the fixed point ---------------------------------------------------

    def _network_latency_map(self, lambda_c: float):
        """Build the scalar map S̄ -> F(S̄) of Eqs. (4)-(15)."""
        m = float(self.message_length)
        classes = self.stats.classes
        total = self.stats.total_destinations

        def f(s_bar: float) -> float:
            rho = lambda_c * s_bar
            if rho >= 1.0:
                return math.inf
            occ = vc_occupancy(lambda_c, s_bar, self.vc.total)
            w = channel_waiting_time(lambda_c, s_bar, m)
            acc = 0.0
            for cls in classes:
                blocking_sum = self.blocking.class_blocking_sum(occ, cls)
                acc += cls.count * (m + cls.distance + w * blocking_sum)
            return acc / total

        return f

    def evaluate(self, generation_rate: float) -> ModelResult:
        """Predict the mean message latency at ``generation_rate``."""
        lambda_c = self.channel_rate(generation_rate)
        s0 = self.zero_load_latency()
        fp = self.solver.solve(self._network_latency_map(lambda_c), s0)
        if fp.saturated:
            return ModelResult(
                generation_rate=generation_rate,
                latency=math.inf,
                network_latency=math.inf,
                source_wait=math.inf,
                channel_wait=math.inf,
                multiplexing=math.nan,
                channel_rate=lambda_c,
                rho=math.inf,
                saturated=True,
                iterations=fp.iterations,
            )
        s_bar = fp.value
        rho = lambda_c * s_bar
        occ = vc_occupancy(lambda_c, s_bar, self.vc.total)
        w = channel_waiting_time(lambda_c, s_bar, self.message_length)
        w_s = source_waiting_time(
            generation_rate, self.vc.total, s_bar, self.message_length
        )
        v_bar = multiplexing_degree(occ)
        saturated = not math.isfinite(w_s)
        latency = (s_bar + w_s) * v_bar if not saturated else math.inf
        return ModelResult(
            generation_rate=generation_rate,
            latency=latency,
            network_latency=s_bar,
            source_wait=w_s,
            channel_wait=w,
            multiplexing=v_bar,
            channel_rate=lambda_c,
            rho=rho,
            saturated=saturated,
            iterations=fp.iterations,
        )

    def sweep(self, rates) -> list[ModelResult]:
        """Evaluate a sequence of generation rates."""
        return [self.evaluate(r) for r in rates]

    def sweep_parallel(
        self,
        rates,
        *,
        workers: int = 1,
        cache_dir=None,
    ) -> list[ModelResult]:
        """Evaluate rates through the campaign executor (process pool).

        Equivalent to :meth:`sweep` but fanned out over ``workers``
        processes; with ``workers=1`` it runs serially through the same
        code path.  Results come back in rate order.
        """
        from repro.campaign.grid import WorkUnit
        from repro.campaign.runner import run_campaign

        base = self.spec().to_params()
        units = [
            WorkUnit(kind="model", params={**base, "rate": float(r)}) for r in rates
        ]
        return list(
            run_campaign(units, workers=workers, cache_dir=cache_dir).results
        )

    def spec(self):
        """Plain-data :class:`~repro.core.spec.ModelSpec` rebuilding this model."""
        from repro.core.spec import ModelSpec

        s = self.solver.settings
        # A split matching the minimum-escape rule is left implicit so the
        # spec keys identically to one that never pinned the split — unit
        # content hashes must agree across every construction path.
        num_adaptive: int | None = self.vc.num_adaptive
        num_escape: int | None = self.vc.num_escape
        if num_escape == self.stats.diameter // 2 + 1:
            num_adaptive = num_escape = None
        return ModelSpec(
            topology=self._spec_topology,
            order=self._spec_order,
            message_length=self.message_length,
            total_vcs=self.vc.total,
            variant=self.blocking.variant.value,
            num_adaptive=num_adaptive,
            num_escape=num_escape,
            workload=self._spec_workload,
            damping=s.damping,
            tolerance=s.tolerance,
            max_iterations=s.max_iterations,
            divergence_threshold=s.divergence_threshold,
        )

    def saturation_search(
        self,
        lo: float = 0.0,
        hi: float = 0.2,
        tol: float = 1e-5,
        max_expansions: int = 10,
    ) -> SaturationSearch:
        """Locate the saturation onset, auto-expanding the bracket.

        The initial ``hi`` is only a guess; when the model is still
        stable there, the bracket is geometrically doubled (up to
        ``max_expansions`` times) until a saturated rate is found, then
        bisected to ``tol``.  Short messages or many VCs push saturation
        well past the historical hard-coded ``hi=0.2``, which previously
        made the search return ``inf`` silently.
        """
        evaluations = 0
        expansions = 0
        lo_rate, hi_rate = lo, hi
        while True:
            evaluations += 1
            if self.evaluate(hi_rate).saturated:
                break
            if expansions >= max_expansions:
                return SaturationSearch(
                    rate=math.inf,
                    bracket=(lo_rate, hi_rate),
                    expansions=expansions,
                    evaluations=evaluations,
                    converged=False,
                )
            lo_rate = hi_rate
            hi_rate *= 2.0
            expansions += 1
        bracket = (lo_rate, hi_rate)
        while hi_rate - lo_rate > tol:
            mid = 0.5 * (lo_rate + hi_rate)
            evaluations += 1
            if self.evaluate(mid).saturated:
                hi_rate = mid
            else:
                lo_rate = mid
        return SaturationSearch(
            rate=hi_rate,
            bracket=bracket,
            expansions=expansions,
            evaluations=evaluations,
            converged=True,
        )

    def saturation_rate(self, lo: float = 0.0, hi: float = 0.2, tol: float = 1e-5) -> float:
        """Smallest generation rate at which the model saturates."""
        return self.saturation_search(lo=lo, hi=hi, tol=tol).rate


class StarLatencyModel(_WormholeLatencyModel):
    """Mean message latency in a wormhole S_n under Enhanced-Nbc routing.

    Parameters
    ----------
    n:
        Star-graph order (network has n! nodes).
    message_length:
        M, flits per message.
    total_vcs:
        V, virtual channels per physical channel.  Split into class-a /
        class-b with the paper's minimum-escape rule unless an explicit
        ``vc_config`` is given.
    vc_config:
        Optional explicit V1/V2 split (ablation studies).
    variant:
        Blocking arithmetic, ``"exact"`` (default) or ``"paper"``
        (see :mod:`repro.core.blocking`).
    solver:
        Fixed-point settings; the defaults converge everywhere below
        saturation for the paper's configurations.
    """

    _spec_topology = "star"

    def __init__(
        self, n: int, message_length: int, total_vcs: int, *, stats=None, **kwargs
    ):
        self.n = n
        if stats is None:
            stats = cached_path_statistics(n)
        super().__init__(stats, message_length, total_vcs, **kwargs)

    @property
    def _spec_order(self) -> int:
        return self.n


class HypercubeLatencyModel(_WormholeLatencyModel):
    """The same model pipeline for the binary hypercube Q_k.

    Implements the paper's stated future work (section 6): comparing the
    star graph against its "equivalent" hypercube under one modelling
    framework.  Adaptivity statistics are exact and trivial in Q_k
    (``f = remaining distance`` on every minimal path).
    """

    _spec_topology = "hypercube"

    def __init__(
        self, k: int, message_length: int, total_vcs: int, *, stats=None, **kwargs
    ):
        from repro.core.hypercube_model import cached_hypercube_statistics

        self.k = k
        if stats is None:
            stats = cached_hypercube_statistics(k)
        super().__init__(stats, message_length, total_vcs, **kwargs)

    @property
    def _spec_order(self) -> int:
        return self.k
