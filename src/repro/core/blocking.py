"""Per-hop blocking probabilities — paper equations (6)-(11).

A message requesting its k-th hop is blocked at one candidate physical
channel when every virtual channel it may legally use there is busy.
With ``P_v`` the busy-VC distribution (Eq. 18) and E eligible channels,
the per-channel blocking probability is

    P_one(E) = sum_{v >= E} P_v C(v, E) / C(V, E),

and the hop blocks only if all f (profitable-channel count) candidates
block: ``P_block = E_paths[P_one^f]`` (Eqs. 7-8).

Two variants of the eligible-count arithmetic are provided:

* ``EXACT`` — re-derived from the negative-hop/bonus-card invariants,
  which in the bipartite star are deterministic per (source colour, hop
  index): eligible classes are ``floor .. V2-1-negatives_after``; the
  paper's A/B-/B+ mixture arises exactly as the average over the two
  source colours.
* ``PAPER`` — the literal counts read from the (OCR-degraded) equations
  (9)-(11): group A uses ``V1 + V2 - ceil(d/2)``, groups B-/B+ subtract
  the last-hop class and one or two more; groups are weighted by the
  class-a usage fraction ``V1/V`` and the B split is half/half.

Both appear in the ablation benchmark; EXACT is the library default.
"""

from __future__ import annotations

from enum import Enum

from repro.core.pathstats import DestinationClass
from repro.routing.vc_classes import (
    VcConfig,
    escape_eligible_count,
    hop_is_negative,
    minimal_floor,
)
from repro.utils.mathx import prob_busy_covers

__all__ = ["BlockingVariant", "BlockingModel"]


class BlockingVariant(str, Enum):
    """Which eligible-VC arithmetic drives Eqs. (9)-(11)."""

    EXACT = "exact"
    PAPER = "paper"


class BlockingModel:
    """Computes mean per-hop blocking for every destination class."""

    def __init__(self, vc: VcConfig, variant: BlockingVariant | str = BlockingVariant.EXACT):
        self.vc = vc
        self.variant = BlockingVariant(variant)

    # -- eligible-count arithmetic ------------------------------------

    def eligible_exact(self, distance: int, k: int, source_color: int) -> int:
        """E at hop k of an h-hop route from a ``source_color`` node."""
        d_remaining = distance - k + 1
        negative = hop_is_negative(k, source_color)
        floor = minimal_floor(k, source_color)
        nb = escape_eligible_count(self.vc.num_escape, d_remaining, negative, floor)
        return self.vc.num_adaptive + nb

    def _p_one_exact(
        self, occupancy: list[float], distance: int, k: int, source_color: int
    ) -> float:
        return prob_busy_covers(occupancy, self.eligible_exact(distance, k, source_color))

    def _p_one_paper(
        self, occupancy: list[float], distance: int, k: int, source_color: int
    ) -> float:
        v1, v2 = self.vc.num_adaptive, self.vc.num_escape
        total = self.vc.total
        d = distance - k + 1
        floor = minimal_floor(k, source_color)
        e_a = v1 + v2 - (d + 1) // 2
        e_bm = e_a - floor - 1
        e_bp = e_a - floor
        p_a = v1 / total if total else 0.0
        blocked_a = prob_busy_covers(occupancy, min(e_a, total))
        blocked_bm = prob_busy_covers(occupancy, min(e_bm, total))
        blocked_bp = prob_busy_covers(occupancy, min(e_bp, total))
        return p_a * blocked_a + (1.0 - p_a) * 0.5 * (blocked_bm + blocked_bp)

    # -- per-hop and per-class blocking ---------------------------------

    def p_one(
        self, occupancy: list[float], distance: int, k: int, source_color: int
    ) -> float:
        """Blocking probability at one candidate channel (Eqs. 9-11)."""
        if self.variant is BlockingVariant.EXACT:
            return self._p_one_exact(occupancy, distance, k, source_color)
        return self._p_one_paper(occupancy, distance, k, source_color)

    def hop_blocking(
        self,
        occupancy: list[float],
        cls: DestinationClass,
        k: int,
        source_color: int,
    ) -> float:
        """P_block for hop k of class ``cls`` (Eqs. 7-8): E_paths[p_one^f]."""
        base = self.p_one(occupancy, cls.distance, k, source_color)
        return cls.expect_pow(k, base)

    def class_blocking_sum(
        self, occupancy: list[float], cls: DestinationClass
    ) -> float:
        """Sum over hops of P_block, averaged over the two source colours.

        This is the factor multiplying the channel wait w in Eq. (4):
        ``sum_k B_{i,k} = w * class_blocking_sum``.
        """
        total = 0.0
        for color in (0, 1):
            for k in range(1, cls.distance + 1):
                total += self.hop_blocking(occupancy, cls, k, color)
        return total / 2.0
