"""M/G/1 waiting-time formulas — paper equations (12)-(16).

Both the network channels and the source queue are approximated as M/G/1
stations with mean service time S̄ (the mean network latency) and the
paper's service-variance approximation ``sigma_S^2 = (S̄ - M)^2``, i.e.
the spread of the service time is attributed entirely to the part above
the minimum possible service (the message length M).
"""

from __future__ import annotations

import math

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "mg1_waiting_time",
    "gg1_waiting_time",
    "burstiness_factor",
    "channel_waiting_time",
    "source_waiting_time",
]


def mg1_waiting_time(arrival_rate: float, service_time: float, message_length: float) -> float:
    """Mean M/G/1 wait with the paper's variance approximation (Eq. 15).

        w = rate * (S̄^2 + (S̄ - M)^2) / (2 (1 - rate * S̄))

    Returns ``inf`` at or beyond ``rate * S̄ = 1`` (saturation) so callers
    can propagate the saturated operating point without branching.
    """
    if arrival_rate < 0 or service_time < 0:
        raise ConfigurationError("rates and service times must be non-negative")
    if message_length < 0 or message_length > service_time:
        raise ConfigurationError(
            f"message length {message_length} exceeds service time {service_time}"
        )
    rho = arrival_rate * service_time
    if rho >= 1.0:
        return math.inf
    if arrival_rate == 0.0:
        return 0.0
    variance = (service_time - message_length) ** 2
    return arrival_rate * (service_time**2 + variance) / (2.0 * (1.0 - rho))


def burstiness_factor(scv_arrivals: float, service_time: float, message_length: float) -> float:
    """Allen-Cunneen G/G/1 correction relative to the M/G/1 wait.

        W_GG1 ~= W_MG1 * (C_a^2 + C_s^2) / (1 + C_s^2)

    with ``C_s^2`` the squared service-time coefficient of variation under
    the paper's variance approximation ``sigma_S = S - M``.  Poisson
    arrivals (``C_a^2 = 1``) give a factor of exactly 1, so the corrected
    wait reduces to the paper's Eq. (15) for the default workload.
    """
    if scv_arrivals < 0:
        raise ConfigurationError(f"arrival SCV must be >= 0, got {scv_arrivals}")
    if service_time <= 0:
        return 1.0
    cs2 = ((service_time - message_length) / service_time) ** 2
    return (scv_arrivals + cs2) / (1.0 + cs2)


def gg1_waiting_time(
    arrival_rate: float,
    service_time: float,
    message_length: float,
    scv_arrivals: float = 1.0,
) -> float:
    """Mean G/G/1 wait: the paper's M/G/1 formula scaled for bursty input."""
    base = mg1_waiting_time(arrival_rate, service_time, message_length)
    if not math.isfinite(base):
        return base
    return base * burstiness_factor(scv_arrivals, service_time, message_length)


def channel_waiting_time(lambda_c: float, service_time: float, message_length: float) -> float:
    """Mean wait to acquire a network virtual channel, w (Eq. 15)."""
    return mg1_waiting_time(lambda_c, service_time, message_length)


def source_waiting_time(
    lambda_g: float, num_vcs: int, service_time: float, message_length: float
) -> float:
    """Mean wait in the source node's injection queue, W_s (Eq. 16).

    The generation stream of rate lambda_g splits evenly over the V
    injection virtual channels, each modelled as its own M/G/1 queue.
    """
    if num_vcs < 1:
        raise ConfigurationError(f"num_vcs must be >= 1, got {num_vcs}")
    return mg1_waiting_time(lambda_g / num_vcs, service_time, message_length)
