"""Analytical latency model for the hypercube — the paper's future work.

Section 6 announces "our next objective is to compare the performance
merits of the star graphs and their equivalent hypercubes".  The model
machinery carries over directly because Q_k is also bipartite with
alternating hop signs:

* destinations at distance h number C(k, h); every minimal path visits
  states whose adaptivity is exactly the remaining distance, so the
  paper's f(i, j, k) is deterministic: ``f = h - k + 1`` at hop k;
* mean distance is ``k 2^(k-1) / (2^k - 1)``;
* the negative-hop escape layer needs ``floor(k/2) + 1`` classes.

Everything else — occupancy, M/G/1 waits, multiplexing, the fixed point —
is shared with :class:`repro.core.model.StarLatencyModel` through the
same :class:`DestinationClass` interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.core.pathstats import DestinationClass
from repro.topology.routing_sets import CycleType
from repro.utils.exceptions import ConfigurationError

__all__ = ["HypercubePathStatistics", "cached_hypercube_statistics"]


#: Placeholder cycle type attached to hypercube classes (the class is
#: identified by its distance; cycle structure is a star-graph notion).
_DUMMY_TYPE = CycleType(0, ())


class HypercubePathStatistics:
    """Destination-class statistics for Q_k, same interface as the star's."""

    def __init__(self, k: int):
        if k < 1:
            raise ConfigurationError(f"HypercubePathStatistics requires k >= 1, got {k}")
        self._k = k
        classes = []
        for h in range(1, k + 1):
            # At hop j of an h-hop route, exactly h-j+1 dimensions remain
            # profitable on every minimal path: the f distribution is a
            # point mass.
            f_dist = tuple({h - j + 1: 1.0} for j in range(1, h + 1))
            classes.append(
                DestinationClass(
                    ctype=_DUMMY_TYPE,
                    count=math.comb(k, h),
                    distance=h,
                    f_dist=f_dist,
                )
            )
        self.classes: tuple[DestinationClass, ...] = tuple(classes)
        self.total_destinations = (1 << k) - 1

    @property
    def n(self) -> int:
        """Dimension count k (named ``n`` for interface parity)."""
        return self._k

    @property
    def degree(self) -> int:
        """Node degree, k."""
        return self._k

    @property
    def diameter(self) -> int:
        """Diameter, k."""
        return self._k

    def mean_distance(self) -> float:
        """k 2^(k-1) / (2^k - 1)."""
        return self._k * (1 << (self._k - 1)) / ((1 << self._k) - 1)

    def verify_against_closed_form(self) -> None:
        """Internal consistency: class counts and count-weighted mean."""
        if sum(c.count for c in self.classes) != self.total_destinations:
            raise ConfigurationError("hypercube classes do not cover the network")
        by_classes = (
            sum(c.count * c.distance for c in self.classes) / self.total_destinations
        )
        if abs(by_classes - self.mean_distance()) > 1e-9:
            raise ConfigurationError("hypercube mean distance inconsistent")


@lru_cache(maxsize=32)
def cached_hypercube_statistics(k: int) -> HypercubePathStatistics:
    """Shared per-k instance, verified on first construction."""
    stats = HypercubePathStatistics(k)
    stats.verify_against_closed_form()
    return stats
