"""Damped fixed-point solver for the model's inter-dependent variables.

The paper notes that S̄ depends on w (Eqs. 4-6) while w depends on S̄
(Eq. 12), and prescribes an iterative technique.  We iterate the scalar
map ``S̄ -> F(S̄)`` with under-relaxation; divergence of the iterates (or
an operating point with ``rho = lambda_c * S̄ >= 1``) is reported as
*saturation*, a legitimate model output distinct from numerical failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.utils.exceptions import ConfigurationError, ConvergenceError

__all__ = ["SolverSettings", "FixedPointResult", "FixedPointSolver"]


@dataclass(frozen=True)
class SolverSettings:
    """Numerical knobs of the fixed-point iteration."""

    damping: float = 0.5
    tolerance: float = 1e-9
    max_iterations: int = 20_000
    #: Iterate magnitude beyond which the operating point is declared
    #: saturated (network latencies are bounded by a few thousand cycles
    #: in every stable regime the paper explores).
    divergence_threshold: float = 1e7

    def __post_init__(self) -> None:
        if not (0.0 < self.damping <= 1.0):
            raise ConfigurationError(f"damping must be in (0, 1], got {self.damping}")
        if self.tolerance <= 0:
            raise ConfigurationError(f"tolerance must be > 0, got {self.tolerance}")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of one fixed-point solve."""

    value: float
    iterations: int
    converged: bool
    saturated: bool
    residual: float


class FixedPointSolver:
    """Under-relaxed iteration of ``x -> f(x)`` with saturation detection.

    ``f`` may return ``inf``/``nan`` to signal that the current iterate
    left the stable region (e.g. rho >= 1); the solver then reports a
    saturated operating point rather than raising.
    """

    def __init__(self, settings: SolverSettings | None = None):
        self.settings = settings or SolverSettings()

    def solve(self, f: Callable[[float], float], x0: float) -> FixedPointResult:
        s = self.settings
        x = float(x0)
        residual = math.inf
        for it in range(1, s.max_iterations + 1):
            fx = f(x)
            if not math.isfinite(fx) or fx > s.divergence_threshold:
                return FixedPointResult(
                    value=math.inf, iterations=it, converged=False,
                    saturated=True, residual=math.inf,
                )
            x_new = (1.0 - s.damping) * x + s.damping * fx
            residual = abs(x_new - x)
            x = x_new
            if residual <= s.tolerance * max(1.0, abs(x)):
                return FixedPointResult(
                    value=x, iterations=it, converged=True,
                    saturated=False, residual=residual,
                )
        # Ran out of iterations: oscillation (raise) vs. slow blow-up
        # (saturation) are distinguished by the trend of the iterates.
        if x > 0.5 * s.divergence_threshold:
            return FixedPointResult(
                value=math.inf, iterations=s.max_iterations, converged=False,
                saturated=True, residual=residual,
            )
        raise ConvergenceError(
            f"fixed point did not converge in {s.max_iterations} iterations "
            f"(residual {residual:.3e} at x={x:.6f})"
        )
