"""Virtual-channel occupancy — paper equations (18) and (19).

A physical channel with V virtual channels is modelled as a birth-death
chain: state v (busy VCs) gains arrivals at the channel traffic rate
lambda_c and drains at rate 1/S̄, with the channel service time
approximated by the mean network latency (the paper's stated
approximation).  The steady state is geometric:

    P_v = rho^v (1 - rho)   for v < V,      P_V = rho^V,

with rho = lambda_c * S̄, which sums to one exactly.  Dally's average
multiplexing degree (Eq. 19) is the busy-VC second moment over the first.
"""

from __future__ import annotations

from repro.utils.exceptions import ConfigurationError

__all__ = ["vc_occupancy", "multiplexing_degree", "utilisation"]


def vc_occupancy(lambda_c: float, service_time: float, num_vcs: int) -> list[float]:
    """Steady-state probabilities ``P_v`` of v busy VCs (Eq. 18).

    Requires ``rho = lambda_c * service_time < 1`` — beyond that the chain
    has no steady state and the caller must report saturation.
    """
    if num_vcs < 1:
        raise ConfigurationError(f"num_vcs must be >= 1, got {num_vcs}")
    if lambda_c < 0 or service_time < 0:
        raise ConfigurationError("rates and service times must be non-negative")
    rho = lambda_c * service_time
    if rho >= 1.0:
        raise ConfigurationError(f"occupancy undefined at rho={rho:.4f} >= 1")
    probs = [(rho**v) * (1.0 - rho) for v in range(num_vcs)]
    probs.append(rho**num_vcs)
    return probs


def multiplexing_degree(occupancy: list[float]) -> float:
    """Dally's average degree of VC multiplexing V̄ (Eq. 19).

    ``sum(v^2 P_v) / sum(v P_v)``; defined as 1.0 at zero load (no busy
    channels to multiplex).
    """
    first = sum(v * p for v, p in enumerate(occupancy))
    second = sum(v * v * p for v, p in enumerate(occupancy))
    if first <= 0.0:
        return 1.0
    return second / first


def utilisation(occupancy: list[float]) -> float:
    """Probability that at least one VC is busy (diagnostics)."""
    return 1.0 - occupancy[0]
