"""Plain-data model specifications for batch and cross-process execution.

:class:`~repro.core.model.StarLatencyModel` holds path statistics,
blocking tables and a solver — cheap to rebuild but awkward to ship
between processes.  :class:`ModelSpec` is the picklable essence: a frozen
dataclass of plain scalars that round-trips through ``to_params`` /
``from_params`` dicts (the campaign layer's work-unit currency) and
rebuilds the full model on demand with :meth:`build`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

from repro.core.solver import SolverSettings
from repro.routing.vc_classes import VcConfig
from repro.utils.exceptions import ConfigurationError

__all__ = ["ModelSpec"]

_DEFAULT_SOLVER = SolverSettings()


@dataclass(frozen=True)
class ModelSpec:
    """Constructor arguments of a latency model, as plain data.

    Attributes
    ----------
    topology:
        ``"star"`` (order = n, the star dimension) or ``"hypercube"``
        (order = k, the cube dimension).
    order:
        Network order parameter (S_n has n! nodes, Q_k has 2**k).
    message_length / total_vcs / variant:
        The model knobs of the paper: M, V and the blocking arithmetic.
    num_adaptive / num_escape:
        Optional explicit VC split; both-or-neither.  When omitted the
        model applies the paper's minimum-escape rule.
    workload:
        Optional workload string (``spatial[+temporal]`` grammar, see
        :mod:`repro.workloads.spec`).  ``None`` — the paper's uniform
        Poisson workload — selects the published closed-form pipeline;
        anything else builds the non-uniform extension
        (:class:`~repro.core.nonuniform.NonUniformLatencyModel`, star
        topology only).  The value is normalised to canonical form so
        equivalent spellings produce identical campaign keys.
    damping / tolerance / max_iterations / divergence_threshold:
        Fixed-point solver settings (defaults match
        :class:`~repro.core.solver.SolverSettings`).
    """

    topology: str = "star"
    order: int = 5
    message_length: int = 32
    total_vcs: int = 6
    variant: str = "exact"
    num_adaptive: int | None = None
    num_escape: int | None = None
    workload: str | None = None
    damping: float = _DEFAULT_SOLVER.damping
    tolerance: float = _DEFAULT_SOLVER.tolerance
    max_iterations: int = _DEFAULT_SOLVER.max_iterations
    divergence_threshold: float = _DEFAULT_SOLVER.divergence_threshold

    def __post_init__(self) -> None:
        if self.topology not in ("star", "hypercube"):
            raise ConfigurationError(
                f"topology must be 'star' or 'hypercube', got {self.topology!r}"
            )
        if (self.num_adaptive is None) != (self.num_escape is None):
            raise ConfigurationError(
                "num_adaptive and num_escape must be given together or not at all"
            )
        if self.workload is not None:
            from repro.workloads.spec import WorkloadSpec

            if self.topology != "star":
                raise ConfigurationError(
                    "non-uniform workload modelling is star-only; "
                    f"got topology {self.topology!r}"
                )
            canonical = WorkloadSpec.coerce(self.workload).canonical
            object.__setattr__(self, "workload", canonical)

    # -- plain-dict round trip ------------------------------------------

    def to_params(self) -> dict[str, Any]:
        """Compact plain-dict form: defaulted fields are omitted.

        Omitting defaults keeps campaign content-hash keys small and
        stable — a spec built with explicit defaults keys identically to
        one that never mentioned them.
        """
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "ModelSpec":
        """Rebuild from a plain dict, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = set(params) - known
        if unknown:
            raise ConfigurationError(f"unknown ModelSpec parameters: {sorted(unknown)}")
        return cls(**dict(params))

    def scenario(self, **extra):
        """The :class:`~repro.api.scenario.Scenario` this spec describes.

        ``extra`` sets sim-side scenario fields (quality, engine, seed,
        ...) that a model spec does not carry.
        """
        from repro.api.scenario import Scenario

        return Scenario.from_model_spec(self, **extra)

    # -- materialisation -------------------------------------------------

    def solver_settings(self) -> SolverSettings:
        """The spec's fixed-point solver configuration."""
        return SolverSettings(
            damping=self.damping,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            divergence_threshold=self.divergence_threshold,
        )

    def vc_config(self) -> VcConfig | None:
        """Explicit VC split, or None for the minimum-escape default."""
        if self.num_adaptive is None:
            return None
        return VcConfig(num_adaptive=self.num_adaptive, num_escape=self.num_escape)

    def build(self, stats=None):
        """Construct the live model (optionally reusing shared ``stats``).

        A non-None ``workload`` selects the non-uniform extension; the
        default builds the paper's closed-form pipeline unchanged.
        """
        if self.workload is not None:
            from repro.core.nonuniform import NonUniformLatencyModel

            return NonUniformLatencyModel(
                self.order,
                self.message_length,
                self.total_vcs,
                workload=self.workload,
                vc_config=self.vc_config(),
                variant=self.variant,
                solver=self.solver_settings(),
                stats=stats,
            )
        from repro.core.model import HypercubeLatencyModel, StarLatencyModel

        cls = StarLatencyModel if self.topology == "star" else HypercubeLatencyModel
        return cls(
            self.order,
            self.message_length,
            self.total_vcs,
            vc_config=self.vc_config(),
            variant=self.variant,
            solver=self.solver_settings(),
            stats=stats,
        )
