"""Feedforward decomposition of a star scenario into bound-ready curves.

Maps a workload on S_n onto the objects the delay/backlog calculus of
:mod:`repro.bounds.analysis` consumes:

1. the workload's spatial pattern is propagated over the minimal-path
   DAG (:func:`repro.workloads.flows.cached_flow_profile`), yielding the
   per-channel flit rates and the destination-class decomposition of the
   offered traffic;
2. each physical channel is a unit-capacity rate-latency server (one
   flit per cycle, one routing cycle of latency); the service left to a
   tagged flow is the blind-multiplexing leftover after subtracting the
   competing aggregate envelope — per-source bursts summed over the
   channel's *crossing sources* (:func:`cached_channel_crossings`), rate
   capped at the channel's measured flit rate;
3. competing bursts grow along paths (a flow delayed by ``theta``
   carries envelope ``alpha(t + theta)``), which couples the leftover
   latency back to itself through the network's shared channels.  The
   coupling is resolved by a monotone fixed point on ``theta``, the
   worst accumulated delay of any competing prefix (injection plus up to
   ``d_max - 1`` earlier hops).  When the growth rate exceeds the
   leftover capacity the iteration diverges and every bound is infinite
   — the honest network-calculus behaviour once adaptive wormhole
   traffic interferes cyclically (see ``docs/bounds.md`` for the
   tightness discussion);
4. wormhole back-pressure enters through the buffer-aware term of
   Mifdaoui & Ayed: a packet blocked at hop ``j`` of a ``d``-hop path
   can park at most ``buffer_depth`` flits in each of the ``d - j``
   downstream channels, and the remainder must drain through the worst
   leftover rate before the hop frees — an additive latency of
   ``max(0, M - B*(d - j)) / R`` per hop.

The decomposition is deliberately conservative (worst channel for every
hop, whole-source burst per flow); looseness is the price of soundness
and is documented, not hidden.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from functools import lru_cache
from typing import Any, Mapping

from repro.bounds.curves import ArrivalCurve, ServiceCurve, temporal_envelope
from repro.core.pathstats import cached_path_statistics
from repro.utils.exceptions import ConfigurationError
from repro.workloads.flows import (
    MAX_FLOW_ORDER,
    cached_channel_crossings,
    cached_flow_profile,
)
from repro.workloads.spec import WorkloadSpec

__all__ = ["BoundSpec", "StarBoundNetwork", "BoundSolution", "CAPACITY", "ROUTING_LATENCY"]

#: Physical channel capacity, flits per cycle.
CAPACITY = 1.0

#: Per-hop routing/switching latency in cycles (the model's zero-load
#: transmission term is ``M + hops``, i.e. one cycle per hop).
ROUTING_LATENCY = 1.0

#: Fixed-point iteration limits for the burstiness-growth coupling.
_MAX_ITERATIONS = 200
_TOLERANCE = 1e-9
#: Accumulated-delay cap beyond which the growth is declared divergent.
_DIVERGENCE_CAP = 1e9


@dataclass(frozen=True)
class BoundSpec:
    """Constructor arguments of a bound network, as plain data.

    The bound engine's counterpart of :class:`~repro.core.spec.ModelSpec`
    — star topology only (the flow propagation is star-specific), with
    the simulator's buffer depth as the one extra knob the worst-case
    analysis is sensitive to.
    """

    order: int = 5
    message_length: int = 32
    total_vcs: int = 6
    workload: str | None = None
    buffer_depth: int = 2

    def __post_init__(self) -> None:
        if self.order < 3:
            raise ConfigurationError(f"star order must be >= 3, got {self.order}")
        if self.order > MAX_FLOW_ORDER:
            raise ConfigurationError(
                f"bound analysis needs order <= {MAX_FLOW_ORDER} "
                f"(explicit flow propagation; S_{self.order} has {self.order}! nodes)"
            )
        if self.message_length < 1:
            raise ConfigurationError(
                f"message_length must be >= 1, got {self.message_length}"
            )
        if self.total_vcs < 1:
            raise ConfigurationError(f"total_vcs must be >= 1, got {self.total_vcs}")
        if self.buffer_depth < 1:
            raise ConfigurationError(
                f"buffer_depth must be >= 1, got {self.buffer_depth}"
            )
        if self.workload is not None:
            canonical = WorkloadSpec.coerce(self.workload).canonical
            object.__setattr__(
                self, "workload", None if canonical == "uniform" else canonical
            )

    def to_params(self) -> dict[str, Any]:
        """Compact plain-dict form (defaulted fields omitted)."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "BoundSpec":
        """Rebuild from a plain dict, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = set(params) - known
        if unknown:
            raise ConfigurationError(f"unknown BoundSpec parameters: {sorted(unknown)}")
        return cls(**dict(params))

    def network(self) -> "StarBoundNetwork":
        """The live bound network (shared per-spec via an LRU cache)."""
        return _network(self)


@lru_cache(maxsize=16)
def _network(spec: BoundSpec) -> "StarBoundNetwork":
    return StarBoundNetwork(spec)


@dataclass(frozen=True)
class BoundSolution:
    """The solved decomposition at one offered load.

    Attributes
    ----------
    source:
        Per-source arrival envelope (the tagged-flow envelope too — the
        whole-source-to-one-destination worst case).
    injection / hop:
        Leftover service of the injection link and of the worst network
        channel (identical for every hop — the worst-channel
        convention).  Saturated service curves signal divergence.
    theta:
        Converged accumulated-delay fixed point (burstiness growth).
    iterations:
        Fixed-point iterations spent.
    converged:
        False when the growth diverged (all bounds are then infinite).
    """

    source: ArrivalCurve
    injection: ServiceCurve
    hop: ServiceCurve
    theta: float
    iterations: int
    converged: bool

    def end_to_end(self, distance: int, message_length: int, buffer_depth: int) -> ServiceCurve:
        """End-to-end service of a ``distance``-hop flow, buffer-aware.

        Convolution of the injection leftover with ``distance`` copies of
        the worst-hop leftover, plus the Mifdaoui-Ayed back-pressure
        latency: at hop ``j`` the ``(M - B*(distance - j))^+`` flits that
        do not fit in downstream buffers must drain at the leftover rate
        before the hop frees.
        """
        if distance < 1:
            return self.injection
        if not self.converged or self.hop.is_saturated or self.injection.is_saturated:
            return ServiceCurve.saturated()
        back_pressure = sum(
            max(0.0, message_length - buffer_depth * (distance - j))
            for j in range(1, distance + 1)
        ) / self.hop.rate
        net = ServiceCurve(self.hop.rate, distance * self.hop.latency)
        return self.injection.convolve(net.with_extra_latency(back_pressure))


class StarBoundNetwork:
    """Bound-ready view of one star workload: curves per class and hop.

    Construction resolves everything rate-independent — flow profile,
    crossing counts, destination classes; :meth:`solve` performs the
    per-rate fixed point and :meth:`classes` exposes the
    ``(weight, distance)`` decomposition the analysis aggregates over.
    """

    def __init__(self, spec: BoundSpec):
        self.spec = spec
        self.workload = WorkloadSpec.coerce(spec.workload)
        profile = cached_flow_profile(spec.order, self.workload.spatial_canonical)
        self._profile = profile
        self._crossings = cached_channel_crossings(
            spec.order, self.workload.spatial_canonical
        )
        stats = cached_path_statistics(spec.order)
        distance_of = {cls.ctype: cls.distance for cls in stats.classes}
        try:
            self.classes: tuple[tuple[float, int], ...] = tuple(
                (weight, distance_of[ctype]) for ctype, weight in profile.class_weights
            )
        except KeyError as exc:  # pragma: no cover - profiles share the lattice
            raise ConfigurationError(
                f"workload routes to cycle type {exc} unknown to the "
                f"S{spec.order} path statistics"
            ) from None
        self.max_distance = max((d for _, d in self.classes), default=0)

    # -- rate-independent views -----------------------------------------

    def source_envelope(self, rate: float) -> ArrivalCurve:
        """One node's arrival envelope at mean message rate ``rate``."""
        return temporal_envelope(
            self.workload.temporal,
            dict(self.workload.temporal_params),
            rate,
            self.spec.message_length,
        )

    def peak_flit_rate(self, rate: float) -> float:
        """Flit rate of the hottest channel at generation rate ``rate``."""
        return rate * self.spec.message_length * self._profile.peak_channel_rate

    # -- the fixed point -------------------------------------------------

    def solve(self, rate: float) -> BoundSolution:
        """Resolve the burstiness-growth coupling at one offered load."""
        if rate < 0:
            raise ConfigurationError(f"generation rate must be >= 0, got {rate}")
        source = self.source_envelope(rate)
        raw = ServiceCurve(CAPACITY, ROUTING_LATENCY)
        if source.is_zero:
            return BoundSolution(
                source=source, injection=raw, hop=raw,
                theta=0.0, iterations=0, converged=True,
            )
        injection = raw.leftover(source)
        m = self.spec.message_length
        rates = rate * m * self._profile.unit_channel_rates
        if injection.is_saturated or float(rates.max()) >= CAPACITY:
            return self._diverged(source, injection, 0)

        sigma_src = source.burst_above(source.rate)
        prefix_hops = max(0, self.max_distance - 1)
        theta = 0.0
        for iteration in range(1, _MAX_ITERATIONS + 1):
            # Worst-channel competing aggregate under the (sigma, rho)
            # cap convention: crossing-source bursts (grown by theta)
            # summed, long-term rate capped at the measured flit rate.
            sigma_c = self._crossings * sigma_src + rates * theta
            competing = ArrivalCurve.token_bucket(
                float(sigma_c.max()), float(rates.max())
            )
            hop = raw.leftover(competing)
            if hop.is_saturated:
                return self._diverged(source, injection, iteration)
            grown = injection.delay_bound(source) + prefix_hops * hop.delay_bound(
                source.delayed(theta)
            )
            if not math.isfinite(grown) or grown > _DIVERGENCE_CAP:
                return self._diverged(source, injection, iteration)
            if abs(grown - theta) <= _TOLERANCE * max(1.0, theta):
                return BoundSolution(
                    source=source, injection=injection, hop=hop,
                    theta=grown, iterations=iteration, converged=True,
                )
            theta = grown
        return self._diverged(source, injection, _MAX_ITERATIONS)

    @staticmethod
    def _diverged(
        source: ArrivalCurve, injection: ServiceCurve, iterations: int
    ) -> BoundSolution:
        return BoundSolution(
            source=source,
            injection=injection,
            hop=ServiceCurve.saturated(),
            theta=math.inf,
            iterations=iterations,
            converged=False,
        )
