"""Network-calculus delay/backlog bounds — the third analysis engine.

Beside the mean-value analytical model (:mod:`repro.core`) and the
flit-level simulator (:mod:`repro.simulation`), this package computes
*worst-case* envelopes for a star scenario in the style of Farhi &
Gaujal 2010 (performance bounds in wormhole routing, a network calculus
approach) and Mifdaoui & Ayed 2016 (buffer-aware worst-case timing
analysis of wormhole NoCs):

* :mod:`repro.bounds.curves` — piecewise-linear arrival/service curves
  with the min-plus operations and the documented burstiness-envelope
  convention per temporal process;
* :mod:`repro.bounds.network` — the feedforward decomposition of a
  workload over the star's minimal-path DAG into leftover service
  curves, with the buffer-aware wormhole back-pressure term;
* :mod:`repro.bounds.analysis` — per-class delay/backlog bounds and
  their aggregation into :class:`BoundResult` operating points.

The preferred entry points are the facade —
``Scenario(...).bound(rates)``, the ``"bound"`` engine in
``Scenario.sweep`` — and ``starnet validate --bounds``; see
``docs/bounds.md`` for conventions and tightness caveats.
"""

from repro.bounds.analysis import BoundResult, bound_point, bound_sweep, divergence_rate
from repro.bounds.curves import ArrivalCurve, ServiceCurve, temporal_envelope
from repro.bounds.network import BoundSpec, StarBoundNetwork

__all__ = [
    "ArrivalCurve",
    "ServiceCurve",
    "temporal_envelope",
    "BoundSpec",
    "StarBoundNetwork",
    "BoundResult",
    "bound_point",
    "bound_sweep",
    "divergence_rate",
]
