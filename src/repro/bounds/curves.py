"""Piecewise-linear arrival/service curves with min-plus algebra.

The network-calculus bound engine (Farhi & Gaujal 2010; Mifdaoui & Ayed
2016) works with two curve families:

* **Arrival curves** — concave piecewise-linear envelopes
  ``alpha(t) = min_i (sigma_i + rho_i * t)`` (and ``alpha(0) = 0``): the
  traffic of a flow over any window of length ``t`` is at most
  ``alpha(t)`` flits.  A single ``(sigma, rho)`` piece is the classic
  token bucket; the MMPP-2/on-off envelope is the *dual* bucket — a peak
  piece active over short windows intersected with a mean piece.
* **Service curves** — rate-latency functions
  ``beta(t) = R * max(0, t - T)``: a channel serves at least ``beta(t)``
  flits in any backlogged window of length ``t``.

Everything downstream (leftover service, delay/backlog deviations,
output envelopes) is derived from four primitives implemented here:
curve addition (aggregate flows), pointwise minimum (which *is* the
min-plus convolution for concave curves vanishing at zero), the
``burst_above`` deviation ``sup_t alpha(t) - R*t``, and the time-shift
``alpha(t + d)`` bounding a flow's output envelope after it suffered at
most ``d`` cycles of delay.

Burstiness-envelope convention (documented in ``docs/bounds.md``): all
curves are in **flit** units over **cycle** time.  A temporal process
with mean message rate ``lambda`` and inter-arrival SCV ``c2`` gets the
mean-piece envelope ``sigma = M * (1 + c2)``, ``rho = lambda * M`` —
exact for deterministic sources (one packet in flight), covering a full
batch for batch-Poisson (``c2 = 2*size - 1``), and a *convention* for
Poisson-like processes whose arrivals are not strictly bounded (the
bounds then hold with respect to the stated envelope, the standard
network-calculus caveat).  The on-off process additionally carries the
peak piece ``(M, rho / duty)`` with the ON-burst mean piece
``sigma = M * (1 + burst)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.utils.exceptions import ConfigurationError

__all__ = ["ArrivalCurve", "ServiceCurve", "temporal_envelope"]


def _prune(pieces: tuple[tuple[float, float], ...]) -> tuple[tuple[float, float], ...]:
    """Drop affine pieces dominated by another (higher sigma AND rho)."""
    uniq = sorted(set(pieces))
    keep: list[tuple[float, float]] = []
    for sigma, rho in uniq:
        if any(s <= sigma and r <= rho for s, r in uniq if (s, r) != (sigma, rho)):
            continue
        keep.append((sigma, rho))
    return tuple(keep) if keep else (uniq[0],)


@dataclass(frozen=True)
class ArrivalCurve:
    """Concave piecewise-linear arrival envelope (flits over cycles).

    ``pieces`` is a tuple of ``(sigma, rho)`` affine bounds;
    ``alpha(t) = min_i (sigma_i + rho_i * t)`` for ``t > 0``.  The zero
    curve (no traffic) is the single piece ``(0, 0)``.
    """

    pieces: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.pieces:
            raise ConfigurationError("an arrival curve needs at least one piece")
        for sigma, rho in self.pieces:
            if not (math.isfinite(sigma) and math.isfinite(rho)):
                raise ConfigurationError(f"non-finite curve piece ({sigma}, {rho})")
            if sigma < 0 or rho < 0:
                raise ConfigurationError(f"negative curve piece ({sigma}, {rho})")
        object.__setattr__(self, "pieces", _prune(tuple(self.pieces)))

    # -- constructors ---------------------------------------------------

    @classmethod
    def zero(cls) -> "ArrivalCurve":
        """The empty flow: alpha(t) = 0."""
        return cls(((0.0, 0.0),))

    @classmethod
    def token_bucket(cls, sigma: float, rho: float) -> "ArrivalCurve":
        """Single-bucket envelope: burst ``sigma``, sustained rate ``rho``."""
        return cls(((float(sigma), float(rho)),))

    # -- basic views ----------------------------------------------------

    @property
    def rate(self) -> float:
        """Long-term sustainable rate (the minimum piece slope)."""
        return min(rho for _, rho in self.pieces)

    @property
    def burst(self) -> float:
        """Instantaneous burst alpha(0+) (the minimum piece offset)."""
        return min(sigma for sigma, _ in self.pieces)

    @property
    def is_zero(self) -> bool:
        """True when the curve admits no traffic at all."""
        return all(sigma == 0.0 and rho == 0.0 for sigma, rho in self.pieces)

    def __call__(self, t: float) -> float:
        """alpha(t) — the envelope value at window length ``t >= 0``."""
        if t < 0:
            raise ConfigurationError(f"window length must be >= 0, got {t}")
        if t == 0:
            return 0.0
        return min(sigma + rho * t for sigma, rho in self.pieces)

    # -- algebra --------------------------------------------------------

    def __add__(self, other: "ArrivalCurve") -> "ArrivalCurve":
        """Aggregate of two flows: pairwise-summed pieces (still concave)."""
        if not isinstance(other, ArrivalCurve):
            return NotImplemented
        return ArrivalCurve(
            tuple(
                (s1 + s2, r1 + r2)
                for s1, r1 in self.pieces
                for s2, r2 in other.pieces
            )
        )

    def minimum(self, other: "ArrivalCurve") -> "ArrivalCurve":
        """Pointwise min — the min-plus convolution of concave curves.

        For concave curves vanishing at zero the min-plus convolution
        ``(a ⊗ b)(t) = inf_s a(s) + b(t - s)`` is attained at an endpoint
        of ``[0, t]``, so it collapses to the pointwise minimum: the
        union of the affine pieces.
        """
        return ArrivalCurve(self.pieces + other.pieces)

    convolve = minimum

    def scaled(self, k: float) -> "ArrivalCurve":
        """``k`` homogeneous copies of this flow aggregated (``k >= 0``)."""
        if k < 0:
            raise ConfigurationError(f"scale factor must be >= 0, got {k}")
        if k == 0:
            return ArrivalCurve.zero()
        return ArrivalCurve(tuple((k * s, k * r) for s, r in self.pieces))

    def delayed(self, d: float) -> "ArrivalCurve":
        """Envelope of this flow after at most ``d`` cycles of delay.

        ``alpha(t + d)`` bounds the *output* of a system that delays the
        flow by at most ``d`` (min-plus deconvolution against the pure
        delay), which is how burstiness grows hop by hop.
        """
        if d < 0 or not math.isfinite(d):
            raise ConfigurationError(f"delay shift must be finite and >= 0, got {d}")
        return ArrivalCurve(tuple((s + r * d, r) for s, r in self.pieces))

    def burst_above(self, rate: float) -> float:
        """``sup_t alpha(t) - rate * t`` — the deviation above a pure rate.

        The workhorse deviation: leftover-service latency, delay and
        backlog bounds all reduce to it.  Infinite when the envelope's
        sustained rate exceeds ``rate``; for the dual-bucket on-off
        envelope the peak piece genuinely tightens the result whenever
        it caps the mean piece at the maximising window.
        """
        if self.is_zero:
            return 0.0
        if self.rate > rate:
            return math.inf
        # g(t) = min_i (sigma_i + (rho_i - rate) t) is concave PL; its
        # sup over t >= 0 is attained at t = 0+ or at a pairwise
        # intersection of pieces (a superset of the envelope breakpoints,
        # where evaluating the true min is exact and extra points are
        # harmless).
        best = min(s for s, _ in self.pieces)  # t -> 0+
        pieces = self.pieces
        for i, (s1, r1) in enumerate(pieces):
            for s2, r2 in pieces[i + 1:]:
                if r1 == r2:
                    continue
                t = (s2 - s1) / (r1 - r2)
                if t > 0:
                    best = max(best, self(t) - rate * t)
        return best


@dataclass(frozen=True)
class ServiceCurve:
    """Rate-latency service curve ``beta(t) = rate * max(0, t - latency)``.

    ``rate = 0`` with ``latency = inf`` is the *saturated* service — a
    channel whose guaranteed throughput is exhausted; every bound
    derived from it is infinite (serialised as JSON null downstream).
    """

    rate: float
    latency: float

    def __post_init__(self) -> None:
        if self.rate < 0 or math.isnan(self.rate):
            raise ConfigurationError(f"service rate must be >= 0, got {self.rate}")
        if self.latency < 0 or math.isnan(self.latency):
            raise ConfigurationError(f"service latency must be >= 0, got {self.latency}")

    @classmethod
    def saturated(cls) -> "ServiceCurve":
        """The exhausted channel: no guaranteed service at any horizon."""
        return cls(0.0, math.inf)

    @property
    def is_saturated(self) -> bool:
        return self.rate <= 0.0 or math.isinf(self.latency)

    def __call__(self, t: float) -> float:
        if t < 0:
            raise ConfigurationError(f"window length must be >= 0, got {t}")
        if self.is_saturated:
            return 0.0
        return self.rate * max(0.0, t - self.latency)

    def convolve(self, other: "ServiceCurve") -> "ServiceCurve":
        """End-to-end service of two servers in tandem (min rate, summed T)."""
        if self.is_saturated or other.is_saturated:
            return ServiceCurve.saturated()
        return ServiceCurve(min(self.rate, other.rate), self.latency + other.latency)

    def with_extra_latency(self, extra: float) -> "ServiceCurve":
        """Same rate, ``extra`` cycles more latency (back-pressure terms)."""
        if self.is_saturated or math.isinf(extra):
            return ServiceCurve.saturated()
        return ServiceCurve(self.rate, self.latency + extra)

    # -- deviations (the bounds) ----------------------------------------

    def delay_bound(self, alpha: ArrivalCurve) -> float:
        """Horizontal deviation: worst-case delay of an ``alpha``-flow."""
        if alpha.is_zero:
            return 0.0
        if self.is_saturated:
            return math.inf
        b = alpha.burst_above(self.rate)
        return self.latency + b / self.rate

    def backlog_bound(self, alpha: ArrivalCurve) -> float:
        """Vertical deviation: worst-case backlog (flits) of an ``alpha``-flow."""
        if alpha.is_zero:
            return 0.0
        if self.is_saturated:
            return math.inf
        return alpha.burst_above(self.rate) + self.rate * self.latency

    def leftover(self, competing: ArrivalCurve) -> "ServiceCurve":
        """Service left to a tagged flow after blind multiplexing.

        Subtracts the competing aggregate's tightest single-bucket
        overbound ``(burst_above(rho), rho)`` from this server:
        ``R' = R - rho``, ``T' = (R*T + sigma) / R'``.  A non-positive
        leftover rate means the channel is saturated for the tagged flow.
        """
        if self.is_saturated:
            return ServiceCurve.saturated()
        if competing.is_zero:
            return self
        rho = competing.rate
        residual = self.rate - rho
        if residual <= 0.0:
            return ServiceCurve.saturated()
        sigma = competing.burst_above(rho)
        return ServiceCurve(residual, (self.rate * self.latency + sigma) / residual)


def temporal_envelope(
    temporal: str,
    params: Mapping[str, Any],
    rate: float,
    message_length: int,
) -> ArrivalCurve:
    """Source arrival envelope of a temporal process, in flits/cycle.

    Implements the burstiness-envelope convention documented in
    ``docs/bounds.md`` (module docstring above): mean piece
    ``(M * (1 + c2), lambda * M)`` for every process, plus the peak
    piece ``(M, lambda * M / duty)`` for the on-off (MMPP-2) process.
    A zero-rate flow yields the zero curve.
    """
    from repro.workloads.temporal import (
        ONOFF_BURST_DEFAULT,
        ONOFF_DUTY_DEFAULT,
        temporal_scv,
    )

    if rate < 0:
        raise ConfigurationError(f"arrival rate must be >= 0, got {rate}")
    if message_length < 1:
        raise ConfigurationError(f"message_length must be >= 1, got {message_length}")
    if rate == 0.0:
        return ArrivalCurve.zero()
    m = float(message_length)
    rho = rate * m
    scv = temporal_scv(temporal, dict(params))
    if temporal == "onoff":
        duty = float(dict(params).get("duty", ONOFF_DUTY_DEFAULT))
        burst = float(dict(params).get("burst", ONOFF_BURST_DEFAULT))
        mean_piece = (m * (1.0 + burst), rho)
        if duty >= 1.0:  # degenerates to Poisson
            return ArrivalCurve.token_bucket(m * (1.0 + scv), rho)
        peak_piece = (m, rho / duty)
        return ArrivalCurve((mean_piece, peak_piece))
    return ArrivalCurve.token_bucket(m * (1.0 + scv), rho)
