"""Per-flow delay/backlog bounds and their headline aggregation.

Turns the solved decomposition of :mod:`repro.bounds.network` into
:class:`BoundResult` operating points shaped like the analytical model's
:class:`~repro.core.model.ModelResult`: per destination class the
end-to-end service curve yields a worst-case delay (horizontal
deviation, covering source queueing, per-hop routing, blind-multiplexing
interference, buffer back-pressure and the M-flit transmission) and a
worst-case backlog (vertical deviation, flits).  Classes aggregate to
the two headline rows the cross-checks consume:

* ``delay_bound`` — the class-weight *mean* of per-class bounds, the
  worst-case counterpart of the model's mean latency (every class bound
  is sound, so their weighted mean bounds the mean latency);
* ``delay_bound_worst`` — the maximum over classes, the bound on the
  unluckiest flow.

A diverged fixed point (see ``docs/bounds.md``) reports every bound as
``inf`` with ``saturated=True``; the ResultRow projection serialises
those as JSON nulls, exactly like saturated model rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bounds.network import BoundSolution, BoundSpec
from repro.utils.exceptions import ConfigurationError

__all__ = ["BoundResult", "bound_point", "bound_sweep", "divergence_rate"]


@dataclass(frozen=True)
class BoundResult:
    """Worst-case envelope of one operating point.

    Attributes
    ----------
    generation_rate:
        Offered load lambda_g (messages/cycle/node).
    delay_bound / delay_bound_worst:
        Class-weight mean and worst-class end-to-end delay bounds
        (cycles); ``inf`` when the burstiness fixed point diverged.
    backlog_bound / backlog_bound_worst:
        Matching backlog bounds (flits buffered anywhere on the path).
    hop_rate / hop_latency:
        The worst-channel leftover service actually used per hop.
    theta:
        Converged burstiness-growth delay (cycles).
    iterations:
        Fixed-point iterations spent.
    saturated:
        True when the fixed point diverged (all bounds infinite).
    """

    generation_rate: float
    delay_bound: float
    delay_bound_worst: float
    backlog_bound: float
    backlog_bound_worst: float
    hop_rate: float
    hop_latency: float
    theta: float
    iterations: int
    saturated: bool

    def as_dict(self) -> dict:
        """JSON/table-friendly view (non-finite floats become None)."""

        def _r(x: float, digits: int = 4) -> float | None:
            return None if math.isinf(x) or math.isnan(x) else round(x, digits)

        return {
            "generation_rate": self.generation_rate,
            "delay_bound": _r(self.delay_bound),
            "delay_bound_worst": _r(self.delay_bound_worst),
            "backlog_bound": _r(self.backlog_bound),
            "backlog_bound_worst": _r(self.backlog_bound_worst),
            "hop_rate": _r(self.hop_rate, 6),
            "hop_latency": _r(self.hop_latency),
            "theta": _r(self.theta),
            "iterations": self.iterations,
            "saturated": self.saturated,
        }


def _aggregate(spec: BoundSpec, solution: BoundSolution, rate: float) -> BoundResult:
    network = spec.network()
    delay_mean = delay_worst = 0.0
    backlog_mean = backlog_worst = 0.0
    for weight, distance in network.classes:
        beta = solution.end_to_end(distance, spec.message_length, spec.buffer_depth)
        delay = beta.delay_bound(solution.source)
        backlog = beta.backlog_bound(solution.source)
        delay_mean += weight * delay
        backlog_mean += weight * backlog
        delay_worst = max(delay_worst, delay)
        backlog_worst = max(backlog_worst, backlog)
    saturated = not solution.converged or not math.isfinite(delay_mean)
    return BoundResult(
        generation_rate=rate,
        delay_bound=delay_mean,
        delay_bound_worst=delay_worst,
        backlog_bound=backlog_mean,
        backlog_bound_worst=backlog_worst,
        hop_rate=solution.hop.rate,
        hop_latency=solution.hop.latency,
        theta=solution.theta,
        iterations=solution.iterations,
        saturated=saturated,
    )


def bound_point(spec: BoundSpec, rate: float) -> BoundResult:
    """Delay/backlog bounds of ``spec`` at one generation rate."""
    network = spec.network()
    return _aggregate(spec, network.solve(rate), rate)


def bound_sweep(spec: BoundSpec, rates) -> list[BoundResult]:
    """Evaluate a sequence of generation rates."""
    return [bound_point(spec, r) for r in rates]


def divergence_rate(
    spec: BoundSpec,
    lo: float = 0.0,
    hi: float = 0.2,
    tol: float = 1e-6,
    max_expansions: int = 10,
) -> float:
    """Smallest rate at which the burstiness fixed point diverges.

    The bound engine's counterpart of the model's saturation search: a
    bracket-expanding bisection on the ``saturated`` flag.  Below this
    rate bounds are finite; above it the cyclic interference growth
    outruns the leftover capacity and every bound is infinite.  Returns
    ``inf`` when no divergent rate is found within the expansion cap.
    """
    if lo < 0 or hi <= lo:
        raise ConfigurationError(f"need 0 <= lo < hi, got lo={lo}, hi={hi}")
    expansions = 0
    lo_rate, hi_rate = lo, hi
    while not bound_point(spec, hi_rate).saturated:
        if expansions >= max_expansions:
            return math.inf
        lo_rate = hi_rate
        hi_rate *= 2.0
        expansions += 1
    while hi_rate - lo_rate > tol:
        mid = 0.5 * (lo_rate + hi_rate)
        if bound_point(spec, mid).saturated:
            hi_rate = mid
        else:
            lo_rate = mid
    return hi_rate
